package apps

import (
	"repro/internal/sched"
)

// strassenApp is Table 1's "strassen: Strassen matrix multiply,
// 4096×4096". Each internal node forks the seven Strassen products (each
// recursively a strassen task) and combines them in its continuation.
func strassenApp() App {
	return App{
		Name:       "strassen",
		Desc:       "Strassen matrix multiply",
		PaperInput: "4096×4096 (scaled here to 64×64, leaf 8)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			n, leaf := 64, 8
			if size == SizeTest {
				n, leaf = 8, 4
			}
			a := newMat(n)
			b := newMat(n)
			c := newMat(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a.set(i, j, float64((i*2+j)%9)-4)
					b.set(i, j, float64((i+j*7)%6)-2)
				}
			}
			want := newMat(n)
			mulAddSerial(want, a, b)
			root := strassenTask(c, a, b, leaf)
			return root, func() error {
				return verifyGrid("strassen", c.data, want.data, 1e-9)
			}
		},
	}
}

// matAddInto computes dst = x + y (same-size views).
func matAddInto(dst, x, y mat) {
	for i := 0; i < dst.n; i++ {
		for j := 0; j < dst.n; j++ {
			dst.set(i, j, x.at(i, j)+y.at(i, j))
		}
	}
}

// matSubInto computes dst = x - y.
func matSubInto(dst, x, y mat) {
	for i := 0; i < dst.n; i++ {
		for j := 0; j < dst.n; j++ {
			dst.set(i, j, x.at(i, j)-y.at(i, j))
		}
	}
}

// matCopy copies src into dst.
func matCopy(dst, src mat) {
	for i := 0; i < dst.n; i++ {
		for j := 0; j < dst.n; j++ {
			dst.set(i, j, src.at(i, j))
		}
	}
}

// strassenTask computes C = A×B (C assumed zero) with Strassen's seven
// products. Temporaries are per-node meta allocations, as in the CilkPlus
// benchmark.
func strassenTask(c, a, b mat, leaf int) sched.TaskFunc {
	return func(w *sched.Worker) {
		if c.n <= leaf {
			w.Work(uint64(2 * c.n * c.n * c.n))
			mulAddSerial(c, a, b)
			return
		}
		h := c.n / 2
		a11, a12, a21, a22 := a.quad(0, 0), a.quad(0, 1), a.quad(1, 0), a.quad(1, 1)
		b11, b12, b21, b22 := b.quad(0, 0), b.quad(0, 1), b.quad(1, 0), b.quad(1, 1)

		// Operand temporaries for the seven products.
		m := make([]mat, 7)
		la := make([]mat, 7)
		lb := make([]mat, 7)
		for i := range m {
			m[i], la[i], lb[i] = newMat(h), newMat(h), newMat(h)
		}
		w.Work(uint64(10 * h * h)) // operand preparation cost

		matAddInto(la[0], a11, a22) // M1 = (A11+A22)(B11+B22)
		matAddInto(lb[0], b11, b22)
		matAddInto(la[1], a21, a22) // M2 = (A21+A22)B11
		matCopy(lb[1], b11)
		matCopy(la[2], a11) // M3 = A11(B12-B22)
		matSubInto(lb[2], b12, b22)
		matCopy(la[3], a22) // M4 = A22(B21-B11)
		matSubInto(lb[3], b21, b11)
		matAddInto(la[4], a11, a12) // M5 = (A11+A12)B22
		matCopy(lb[4], b22)
		matSubInto(la[5], a21, a11) // M6 = (A21-A11)(B11+B12)
		matAddInto(lb[5], b11, b12)
		matSubInto(la[6], a12, a22) // M7 = (A12-A22)(B21+B22)
		matAddInto(lb[6], b21, b22)

		children := make([]sched.TaskFunc, 7)
		for i := range children {
			children[i] = strassenTask(m[i], la[i], lb[i], leaf)
		}
		w.Fork(func(w *sched.Worker) {
			w.Work(uint64(8 * h * h)) // combine cost
			c11, c12, c21, c22 := c.quad(0, 0), c.quad(0, 1), c.quad(1, 0), c.quad(1, 1)
			for i := 0; i < h; i++ {
				for j := 0; j < h; j++ {
					m1, m2, m3 := m[0].at(i, j), m[1].at(i, j), m[2].at(i, j)
					m4, m5, m6, m7 := m[3].at(i, j), m[4].at(i, j), m[5].at(i, j), m[6].at(i, j)
					c11.set(i, j, m1+m4-m5+m7)
					c12.set(i, j, m3+m5)
					c21.set(i, j, m2+m4)
					c22.set(i, j, m1-m2+m3+m6)
				}
			}
		}, children...)
	}
}
