package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tso"
)

// TestAllAppsSerialReference sanity-checks each app's verifier against a
// purely meta-level run: the root task executed by a 1-worker pool on the
// baseline queue must produce the reference answer.
func TestAllAppsSerialReference(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 8, Seed: 1, DrainBias: 0.4})
			p := sched.NewPool(m, sched.Options{Algo: core.AlgoTHE, Seed: 1})
			root, verify := app.Build(SizeTest)
			if _, err := p.Run(root); err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllAppsMultiWorkerChaos runs every app with 3 workers under
// adversarial schedules on the fence-free queues with a sound δ: results
// must still verify and no task may run twice.
func TestAllAppsMultiWorkerChaos(t *testing.T) {
	algos := []core.Algo{core.AlgoTHE, core.AlgoFFTHE, core.AlgoTHEP, core.AlgoChaseLev, core.AlgoFFCL}
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			for i, algo := range algos {
				seed := int64(i*17 + 3)
				m := tso.NewMachine(tso.Config{Threads: 3, BufferSize: 4, Seed: seed, DrainBias: 0.2})
				// δ = ⌈4/2⌉ = 2 is sound: the pool does one post-take store.
				p := sched.NewPool(m, sched.Options{Algo: algo, Delta: 2, Seed: seed})
				root, verify := app.Build(SizeTest)
				st, err := p.Run(root)
				if err != nil {
					t.Fatalf("%v: %v", algo, err)
				}
				if st.Duplicates != 0 {
					t.Fatalf("%v: %d duplicate executions", algo, st.Duplicates)
				}
				if err := verify(); err != nil {
					t.Fatalf("%v: %v", algo, err)
				}
			}
		})
	}
}

// TestAllAppsTimedEngine runs every app on the performance engine and
// checks both the result and that the run consumed virtual time.
func TestAllAppsTimedEngine(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			m := tso.NewTimedMachine(tso.Config{Threads: 4, BufferSize: 33})
			p := sched.NewPool(m, sched.Options{Algo: core.AlgoTHE, Seed: 2})
			root, verify := app.Build(SizeTest)
			st, err := p.Run(root)
			if err != nil {
				t.Fatal(err)
			}
			if err := verify(); err != nil {
				t.Fatal(err)
			}
			if st.Elapsed == 0 {
				t.Fatal("no virtual time elapsed")
			}
		})
	}
}

func TestFigure1AppsSubset(t *testing.T) {
	apps := Figure1Apps()
	if len(apps) != 7 {
		t.Fatalf("Figure 1 subset has %d apps want 7", len(apps))
	}
	want := []string{"Fib", "Jacobi", "QuickSort", "Matmul", "Integrate", "knapsack", "cholesky"}
	for i, a := range apps {
		if a.Name != want[i] {
			t.Fatalf("Figure 1 app %d = %q want %q", i, a.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Fib"); !ok {
		t.Fatal("Fib not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus app found")
	}
	if got := len(All()); got != 11 {
		t.Fatalf("suite has %d apps want 11 (Table 1)", got)
	}
}

// TestBuildIsFresh ensures repeated Build calls give independent state.
func TestBuildIsFresh(t *testing.T) {
	app, _ := ByName("QuickSort")
	m := tso.NewMachine(tso.Config{Threads: 1, BufferSize: 8, Seed: 9})
	p := sched.NewPool(m, sched.Options{Algo: core.AlgoTHE, Seed: 9})
	for round := 0; round < 2; round++ {
		root, verify := app.Build(SizeTest)
		if _, err := p.Run(root); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestHelperReferences(t *testing.T) {
	if fibSerial(10) != 55 {
		t.Fatalf("fibSerial(10) = %d", fibSerial(10))
	}
	if knapsackDP([]ksItem{{2, 3}, {3, 4}, {4, 5}}, 5) != 7 {
		t.Fatal("knapsackDP reference wrong")
	}
	x := dftDirect([]complex128{1, 0, 0, 0})
	for _, v := range x {
		if !approxEqual(real(v), 1, 1e-9) || !approxEqual(imag(v), 0, 1e-9) {
			t.Fatalf("dft of impulse not flat: %v", x)
		}
	}
}
