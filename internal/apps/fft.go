package apps

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/sched"
)

// fftApp is Table 1's "fft: Fast Fourier transform, 2^26 points".
// Recursive radix-2 Cooley-Tukey: each node forks the even and odd
// half-transforms and combines with twiddle factors in its continuation.
func fftApp() App {
	return App{
		Name:       "fft",
		Desc:       "Fast Fourier transform",
		PaperInput: "2^26 points (scaled here to 2048, leaf 16)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			n, leaf := 2048, 16
			if size == SizeTest {
				n, leaf = 32, 8
			}
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(math.Sin(float64(3*i)), math.Cos(float64(2*i))/2)
			}
			want := dftDirect(x)
			out := make([]complex128, n)
			copy(out, x)
			root := fftTask(out, leaf)
			return root, func() error {
				for i := range out {
					if cmplx.Abs(out[i]-want[i]) > 1e-6*(1+cmplx.Abs(want[i])) {
						return fmt.Errorf("fft: bin %d = %v want %v", i, out[i], want[i])
					}
				}
				return nil
			}
		},
	}
}

// fftTask transforms x in place (len(x) must be a power of two).
func fftTask(x []complex128, leaf int) sched.TaskFunc {
	return func(w *sched.Worker) {
		n := len(x)
		if n <= leaf {
			w.Work(uint64(10 * n * bits(n)))
			fftSerial(x)
			return
		}
		even := make([]complex128, n/2)
		odd := make([]complex128, n/2)
		for i := 0; i < n/2; i++ {
			even[i] = x[2*i]
			odd[i] = x[2*i+1]
		}
		w.Work(uint64(n))
		w.Fork(func(w *sched.Worker) {
			w.Work(uint64(3 * n))
			for k := 0; k < n/2; k++ {
				t := twiddle(k, n) * odd[k]
				x[k] = even[k] + t
				x[k+n/2] = even[k] - t
			}
		}, fftTask(even, leaf), fftTask(odd, leaf))
	}
}

func twiddle(k, n int) complex128 {
	ang := -2 * math.Pi * float64(k) / float64(n)
	return cmplx.Exp(complex(0, ang))
}

func fftSerial(x []complex128) {
	n := len(x)
	if n == 1 {
		return
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	fftSerial(even)
	fftSerial(odd)
	for k := 0; k < n/2; k++ {
		t := twiddle(k, n) * odd[k]
		x[k] = even[k] + t
		x[k+n/2] = even[k] - t
	}
}

func dftDirect(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * twiddle(k*j%n, n)
		}
		out[k] = s
	}
	return out
}

func bits(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
