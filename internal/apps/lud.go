package apps

import (
	"fmt"

	"repro/internal/sched"
)

// ludApp is Table 1's "LUD: LU decomposition, 1024×1024". Blocked
// right-looking LU without pivoting (the input is made diagonally
// dominant), with the same stage-chained fork structure as cholesky. This
// is the program whose shallow per-stage queues make FF-THE with δ=4
// unable to steal in Figure 10.
func ludApp() App {
	return App{
		Name:       "LUD",
		Desc:       "LU decomposition",
		PaperInput: "1024×1024 (scaled here to 64×64, block 4)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			n, b := 64, 4
			if size == SizeTest {
				n, b = 8, 4
			}
			a := ddMatrix(n)
			orig := append([]float64(nil), a...)
			root := ludStage(a, n, b, 0)
			return root, func() error {
				return verifyLU(a, orig, n)
			}
		},
	}
}

// ddMatrix builds a diagonally dominant (hence LU-stable) matrix.
func ddMatrix(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float64((i*5+j*11)%7) - 3
		}
		a[i*n+i] = float64(4*n) + 1
	}
	return a
}

func ludStage(a []float64, n, b, k int) sched.TaskFunc {
	return func(w *sched.Worker) {
		nb := n / b
		if k == nb {
			return
		}
		w.Work(uint64(4 * b * b * b))
		ludFactorDiag(a, n, b, k)

		var panels []sched.TaskFunc
		for i := k + 1; i < nb; i++ {
			i := i
			// Column panel: L[i][k] := A[i][k]·U[k][k]⁻¹
			panels = append(panels, func(w *sched.Worker) {
				w.Work(uint64(4 * b * b * b))
				ludColPanel(a, n, b, i, k)
			})
			// Row panel: U[k][i] := L[k][k]⁻¹·A[k][i]
			panels = append(panels, func(w *sched.Worker) {
				w.Work(uint64(4 * b * b * b))
				ludRowPanel(a, n, b, k, i)
			})
		}
		trailing := func(w *sched.Worker) {
			var ts []sched.TaskFunc
			for i := k + 1; i < nb; i++ {
				for j := k + 1; j < nb; j++ {
					i, j := i, j
					ts = append(ts, func(w *sched.Worker) {
						w.Work(uint64(4 * b * b * b))
						ludTrailing(a, n, b, i, j, k)
					})
				}
			}
			if len(ts) == 0 {
				ludStage(a, n, b, k+1)(w)
				return
			}
			w.Fork(ludStage(a, n, b, k+1), ts...)
		}
		if len(panels) == 0 {
			trailing(w)
			return
		}
		w.Fork(trailing, panels...)
	}
}

// ludFactorDiag performs unblocked LU on the k-th diagonal block, storing
// L (unit lower) and U in place.
func ludFactorDiag(a []float64, n, b, k int) {
	o := k * b
	for p := 0; p < b; p++ {
		piv := a[(o+p)*n+o+p]
		for i := p + 1; i < b; i++ {
			l := a[(o+i)*n+o+p] / piv
			a[(o+i)*n+o+p] = l
			for j := p + 1; j < b; j++ {
				a[(o+i)*n+o+j] -= l * a[(o+p)*n+o+j]
			}
		}
	}
}

// ludColPanel solves L[bi][bk]·U[bk][bk] = A[bi][bk] for L[bi][bk].
func ludColPanel(a []float64, n, b, bi, bk int) {
	ro, co := bi*b, bk*b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := a[(ro+i)*n+co+j]
			for p := 0; p < j; p++ {
				s -= a[(ro+i)*n+co+p] * a[(co+p)*n+co+j]
			}
			a[(ro+i)*n+co+j] = s / a[(co+j)*n+co+j]
		}
	}
}

// ludRowPanel solves L[bk][bk]·U[bk][bj] = A[bk][bj] for U[bk][bj]
// (L is unit lower triangular).
func ludRowPanel(a []float64, n, b, bk, bj int) {
	ro, co := bk*b, bj*b
	for j := 0; j < b; j++ {
		for i := 0; i < b; i++ {
			s := a[(ro+i)*n+co+j]
			for p := 0; p < i; p++ {
				s -= a[(ro+i)*n+ro+p] * a[(ro+p)*n+co+j]
			}
			a[(ro+i)*n+co+j] = s
		}
	}
}

// ludTrailing computes A[bi][bj] -= L[bi][bk]·U[bk][bj].
func ludTrailing(a []float64, n, b, bi, bj, bk int) {
	ro, co, ko := bi*b, bj*b, bk*b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := 0.0
			for p := 0; p < b; p++ {
				s += a[(ro+i)*n+ko+p] * a[(ko+p)*n+co+j]
			}
			a[(ro+i)*n+co+j] -= s
		}
	}
}

// verifyLU checks L·U ≈ original, with L unit-lower and U upper stored in
// place.
func verifyLU(lu, orig []float64, n int) error {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < n; p++ {
				var l, u float64
				switch {
				case p < i:
					l = lu[i*n+p]
				case p == i:
					l = 1
				}
				if p <= j {
					u = lu[p*n+j]
				}
				s += l * u
			}
			if !approxEqual(s, orig[i*n+j], 1e-6) {
				return fmt.Errorf("lud: (LU)[%d,%d] = %g want %g", i, j, s, orig[i*n+j])
			}
		}
	}
	return nil
}
