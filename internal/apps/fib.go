package apps

import (
	"fmt"

	"repro/internal/sched"
)

// fibApp is Table 1's "Fib: Recursive Fibonacci, input 42". The paper's
// most fence-sensitive program: every task is a few dozen cycles, so the
// take() fence is ~25% of execution time (Figure 1's leftmost bar).
func fibApp() App {
	return App{
		Name:       "Fib",
		Desc:       "Recursive Fibonacci",
		PaperInput: "42 (scaled here to 17)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			n := 17
			if size == SizeTest {
				n = 10
			}
			var result uint64
			return fibTask(n, &result), func() error {
				if want := fibSerial(n); result != want {
					return fmt.Errorf("fib(%d) = %d want %d", n, result, want)
				}
				return nil
			}
		},
	}
}

// fibNodeWork is the modelled cost of one fib task body; calibrated so the
// fence accounts for roughly a quarter of single-threaded execution, as on
// the paper's Haswell.
const fibNodeWork = 45

func fibTask(n int, out *uint64) sched.TaskFunc {
	return func(w *sched.Worker) {
		w.Work(fibNodeWork)
		if n < 2 {
			*out = uint64(n)
			return
		}
		var a, b uint64
		w.Fork(func(w *sched.Worker) {
			w.Work(10)
			*out = a + b
		}, fibTask(n-1, &a), fibTask(n-2, &b))
	}
}

func fibSerial(n int) uint64 {
	a, b := uint64(0), uint64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}
