package apps

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// These tests exercise the numeric kernels the task bodies are built from,
// independent of any scheduler, so a kernel regression is pinpointed
// rather than surfacing as an opaque verify() failure.

func TestPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 25 + r.Intn(200)
		a := make([]int, n)
		for i := range a {
			a[i] = r.Intn(50) // duplicates likely
		}
		want := append([]int(nil), a...)
		sort.Ints(want)
		p := partition(a)
		if p <= 0 || p >= n-1 {
			// Median-of-three guarantees at least one element on each
			// side for n >= 3 distinct positions.
			if p < 0 || p >= n {
				return false
			}
		}
		pivot := a[p]
		for _, v := range a[:p] {
			if v > pivot {
				return false
			}
		}
		for _, v := range a[p+1:] {
			if v < pivot {
				return false
			}
		}
		// Permutation preserved.
		got := append([]int(nil), a...)
		sort.Ints(got)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatViewsShareStorage(t *testing.T) {
	m := newMat(4)
	q := m.quad(1, 1)
	q.set(0, 0, 7)
	if got := m.at(2, 2); got != 7 {
		t.Fatalf("quadrant write not visible through parent: %v", got)
	}
	q.add(0, 0, 3)
	if got := m.at(2, 2); got != 10 {
		t.Fatalf("add = %v want 10", got)
	}
}

func TestMulAddSerialAgainstDirect(t *testing.T) {
	const n = 6
	a, b, c := newMat(n), newMat(n), newMat(n)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.set(i, j, r.Float64()*4-2)
			b.set(i, j, r.Float64()*4-2)
		}
	}
	mulAddSerial(c, a, b)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += a.at(i, k) * b.at(k, j)
			}
			if !approxEqual(c.at(i, j), want, 1e-9) {
				t.Fatalf("c[%d,%d] = %v want %v", i, j, c.at(i, j), want)
			}
		}
	}
}

func TestMatHelpers(t *testing.T) {
	x, y, d := newMat(3), newMat(3), newMat(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			x.set(i, j, float64(i+j))
			y.set(i, j, float64(i*j))
		}
	}
	matAddInto(d, x, y)
	if d.at(2, 2) != 4+4 {
		t.Fatalf("add = %v", d.at(2, 2))
	}
	matSubInto(d, x, y)
	if d.at(2, 2) != 4-4 {
		t.Fatalf("sub = %v", d.at(2, 2))
	}
	matCopy(d, x)
	if d.at(1, 2) != 3 {
		t.Fatalf("copy = %v", d.at(1, 2))
	}
}

func TestCholeskyKernelsComposeToFactorization(t *testing.T) {
	// Running the blocked kernels sequentially must equal an unblocked
	// Cholesky factorization.
	const n, b = 12, 3
	a := spdMatrix(n)
	orig := append([]float64(nil), a...)
	nb := n / b
	for k := 0; k < nb; k++ {
		factorDiag(a, n, b, k)
		for i := k + 1; i < nb; i++ {
			triangularSolve(a, n, b, i, k)
		}
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j <= i; j++ {
				syrkUpdate(a, n, b, i, j, k)
			}
		}
	}
	if err := verifyCholesky(a, orig, n); err != nil {
		t.Fatal(err)
	}
}

func TestLUDKernelsComposeToFactorization(t *testing.T) {
	const n, b = 12, 3
	a := ddMatrix(n)
	orig := append([]float64(nil), a...)
	nb := n / b
	for k := 0; k < nb; k++ {
		ludFactorDiag(a, n, b, k)
		for i := k + 1; i < nb; i++ {
			ludColPanel(a, n, b, i, k)
			ludRowPanel(a, n, b, k, i)
		}
		for i := k + 1; i < nb; i++ {
			for j := k + 1; j < nb; j++ {
				ludTrailing(a, n, b, i, j, k)
			}
		}
	}
	if err := verifyLU(a, orig, n); err != nil {
		t.Fatal(err)
	}
}

func TestFFTSerialMatchesDirectDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		x := make([]complex128, n)
		r := rand.New(rand.NewSource(int64(n)))
		for i := range x {
			x[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
		}
		want := dftDirect(x)
		got := append([]complex128(nil), x...)
		fftSerial(got)
		for i := range got {
			d := got[i] - want[i]
			if math.Hypot(real(d), imag(d)) > 1e-9*(1+math.Hypot(real(want[i]), imag(want[i]))) {
				t.Fatalf("n=%d bin %d: %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Energy conservation: sum |x|^2 = (1/n) sum |X|^2.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]complex128, n)
		tEnergy := 0.0
		for i := range x {
			x[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
			tEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		fftSerial(x)
		fEnergy := 0.0
		for _, v := range x {
			fEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(tEnergy-fEnergy/float64(n)) < 1e-9*(1+tEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKnapsackBoundIsAdmissible(t *testing.T) {
	// The fractional bound must never underestimate the best achievable
	// value from state (i, cap) — otherwise branch-and-bound would prune
	// optimal solutions.
	items, capacity := genItems(12)
	var exact func(i, cap int) int
	exact = func(i, cap int) int {
		if i == len(items) || cap == 0 {
			return 0
		}
		best := exact(i+1, cap)
		if items[i].weight <= cap {
			if v := items[i].value + exact(i+1, cap-items[i].weight); v > best {
				best = v
			}
		}
		return best
	}
	for i := 0; i <= len(items); i += 3 {
		for _, cap := range []int{0, capacity / 4, capacity / 2, capacity} {
			if bound, opt := ksBound(items, i, cap), exact(i, cap); bound < opt {
				t.Fatalf("bound(%d,%d) = %d < exact %d (inadmissible)", i, cap, bound, opt)
			}
		}
	}
}

func TestKnapsackDPMatchesBruteForce(t *testing.T) {
	items := []ksItem{{3, 4}, {4, 5}, {2, 3}, {5, 8}}
	best := 0
	for mask := 0; mask < 1<<len(items); mask++ {
		w, v := 0, 0
		for i, it := range items {
			if mask>>i&1 == 1 {
				w += it.weight
				v += it.value
			}
		}
		if w <= 7 && v > best {
			best = v
		}
	}
	if got := knapsackDP(items, 7); got != best {
		t.Fatalf("dp = %d want %d", got, best)
	}
}

func TestStencilsPreserveBoundary(t *testing.T) {
	n := 8
	src := makeMesh(n, func(i, j int) float64 { return float64(i*n + j) })
	dst := make([]float64, n*n)
	jacobiRelaxRows(dst, src, n, 0, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == 0 || j == 0 || i == n-1 || j == n-1 {
				if dst[i*n+j] != src[i*n+j] {
					t.Fatalf("jacobi boundary (%d,%d) changed", i, j)
				}
			}
		}
	}
	heatRelaxRows(dst, src, n, n, 0, n)
	if dst[0] != src[0] || dst[n*n-1] != src[n*n-1] {
		t.Fatal("heat boundary changed")
	}
}

func TestHeatStepIsContraction(t *testing.T) {
	// With insulated boundaries and alpha <= 0.25 the explicit step cannot
	// create new extrema in the interior.
	nx, ny := 10, 10
	src := make([]float64, nx*ny)
	r := rand.New(rand.NewSource(3))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range src {
		src[i] = r.Float64()
		lo = math.Min(lo, src[i])
		hi = math.Max(hi, src[i])
	}
	dst := make([]float64, nx*ny)
	heatRelaxRows(dst, src, nx, ny, 0, nx)
	for _, v := range dst {
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("value %v escapes [%v, %v]", v, lo, hi)
		}
	}
}

func TestSPDAndDDMatrixProperties(t *testing.T) {
	n := 10
	a := spdMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a[i*n+j] != a[j*n+i] {
				t.Fatalf("spd not symmetric at (%d,%d)", i, j)
			}
		}
	}
	d := ddMatrix(n)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				sum += math.Abs(d[i*n+j])
			}
		}
		if math.Abs(d[i*n+i]) <= sum {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestBits(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 16: 4, 1024: 10}
	for n, want := range cases {
		if got := bits(n); got != want {
			t.Errorf("bits(%d) = %d want %d", n, got, want)
		}
	}
}

func TestFibSerialBase(t *testing.T) {
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13}
	for n, w := range want {
		if got := fibSerial(n); got != w {
			t.Errorf("fibSerial(%d) = %d want %d", n, got, w)
		}
	}
}
