package apps

import (
	"fmt"
	"math"

	"repro/internal/sched"
)

// integrateApp is Table 1's "Integrate: Recursively calculate area under a
// curve, input 10000". Adaptive trapezoid refinement: each node either
// accepts its interval (leaf) or forks two halves. Fine-grained, so the
// fence share is high (~20% in Figure 1).
func integrateApp() App {
	return App{
		Name:       "Integrate",
		Desc:       "Recursively calculate area under a curve",
		PaperInput: "10000 (scaled here to depth 9 over [0, 2π])",
		build: func(size Size) (sched.TaskFunc, func() error) {
			depth := 9
			if size == SizeTest {
				depth = 5
			}
			f := func(x float64) float64 { return math.Sin(x) + 0.5*x }
			lo, hi := 0.0, 2*math.Pi
			// ∫ sin = 1-cos(2π) = 0 ; ∫ 0.5x = 0.25·(2π)²
			want := 0.25 * (2 * math.Pi) * (2 * math.Pi)
			var sum float64
			root := integrateTask(f, lo, hi, depth, &sum)
			return root, func() error {
				if math.Abs(sum-want) > 1e-3*math.Abs(want) {
					return fmt.Errorf("integrate: got %g want %g", sum, want)
				}
				return nil
			}
		},
	}
}

// integrateTask refines [lo,hi] to a fixed depth (a deterministic stand-in
// for error-driven adaptivity, keeping the task tree reproducible). The
// meta accumulation into *sum is race-free because the simulated machine
// serializes task bodies.
func integrateTask(f func(float64) float64, lo, hi float64, depth int, sum *float64) sched.TaskFunc {
	return func(w *sched.Worker) {
		w.Work(75)
		if depth == 0 {
			mid := (lo + hi) / 2
			// Two trapezoids per leaf.
			*sum += (hi - lo) / 4 * (f(lo) + 2*f(mid) + f(hi))
			return
		}
		mid := (lo + hi) / 2
		w.Fork(func(w *sched.Worker) { w.Work(10) },
			integrateTask(f, lo, mid, depth-1, sum),
			integrateTask(f, mid, hi, depth-1, sum),
		)
	}
}
