package apps

import (
	"fmt"
	"math"

	"repro/internal/sched"
)

// choleskyApp is Table 1's "cholesky: Cholesky factorization, 4000×4000,
// 40000 nonzeros". Blocked right-looking factorization: per step k, a
// diagonal factor task, a fork of column-panel updates, then a fork of
// trailing-submatrix updates, then the next step. Tasks are O(b³) —
// the coarsest in the suite (~3% fence share in Figure 1).
func choleskyApp() App {
	return App{
		Name:       "cholesky",
		Desc:       "Cholesky factorization",
		PaperInput: "4000×4000, 40000 nonzeros (scaled here to 64×64, block 4)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			n, b := 64, 4
			if size == SizeTest {
				n, b = 8, 4
			}
			a := spdMatrix(n)
			orig := append([]float64(nil), a...)
			root := choleskyStage(a, n, b, 0)
			return root, func() error {
				return verifyCholesky(a, orig, n)
			}
		},
	}
}

// spdMatrix builds a symmetric positive-definite matrix (diagonally
// dominant).
func spdMatrix(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := float64((i*3+j*7)%13)/13 + 0.1
			a[i*n+j] = v
			a[j*n+i] = v
		}
		a[i*n+i] = float64(n) + 2
	}
	return a
}

// choleskyStage performs step k of the blocked factorization and chains to
// step k+1 through continuations.
func choleskyStage(a []float64, n, b, k int) sched.TaskFunc {
	return func(w *sched.Worker) {
		nb := n / b
		if k == nb {
			return
		}
		// Factor the diagonal block A[k][k] in place (serial, coarse).
		w.Work(uint64(7 * b * b * b))
		factorDiag(a, n, b, k)

		// Column panel: L[i][k] = A[i][k] · L[k][k]^-T for i > k.
		panel := make([]sched.TaskFunc, 0, nb-k-1)
		for i := k + 1; i < nb; i++ {
			i := i
			panel = append(panel, func(w *sched.Worker) {
				w.Work(uint64(7 * b * b * b))
				triangularSolve(a, n, b, i, k)
			})
		}
		// Trailing update: A[i][j] -= L[i][k]·L[j][k]^T for k<j<=i.
		trailing := func(w *sched.Worker) {
			var ts []sched.TaskFunc
			for i := k + 1; i < nb; i++ {
				for j := k + 1; j <= i; j++ {
					i, j := i, j
					ts = append(ts, func(w *sched.Worker) {
						w.Work(uint64(7 * b * b * b))
						syrkUpdate(a, n, b, i, j, k)
					})
				}
			}
			if len(ts) == 0 {
				choleskyStage(a, n, b, k+1)(w)
				return
			}
			w.Fork(choleskyStage(a, n, b, k+1), ts...)
		}
		if len(panel) == 0 {
			trailing(w)
			return
		}
		w.Fork(trailing, panel...)
	}
}

func factorDiag(a []float64, n, b, k int) {
	o := k * b
	for j := 0; j < b; j++ {
		d := a[(o+j)*n+o+j]
		for p := 0; p < j; p++ {
			d -= a[(o+j)*n+o+p] * a[(o+j)*n+o+p]
		}
		d = math.Sqrt(d)
		a[(o+j)*n+o+j] = d
		for i := j + 1; i < b; i++ {
			s := a[(o+i)*n+o+j]
			for p := 0; p < j; p++ {
				s -= a[(o+i)*n+o+p] * a[(o+j)*n+o+p]
			}
			a[(o+i)*n+o+j] = s / d
		}
	}
}

// triangularSolve computes block L[bi][bk] := A[bi][bk] · L[bk][bk]^-T.
func triangularSolve(a []float64, n, b, bi, bk int) {
	ro, co := bi*b, bk*b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := a[(ro+i)*n+co+j]
			for p := 0; p < j; p++ {
				s -= a[(ro+i)*n+co+p] * a[(co+j)*n+co+p]
			}
			a[(ro+i)*n+co+j] = s / a[(co+j)*n+co+j]
		}
	}
}

// syrkUpdate computes A[bi][bj] -= L[bi][bk]·L[bj][bk]^T.
func syrkUpdate(a []float64, n, b, bi, bj, bk int) {
	ro, co, ko := bi*b, bj*b, bk*b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := 0.0
			for p := 0; p < b; p++ {
				s += a[(ro+i)*n+ko+p] * a[(co+j)*n+ko+p]
			}
			a[(ro+i)*n+co+j] -= s
		}
	}
}

// verifyCholesky checks L·Lᵀ ≈ original on the lower triangle.
func verifyCholesky(l, orig []float64, n int) error {
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for p := 0; p <= j; p++ {
				s += l[i*n+p] * l[j*n+p]
			}
			if !approxEqual(s, orig[i*n+j], 1e-6) {
				return fmt.Errorf("cholesky: (LLᵀ)[%d,%d] = %g want %g", i, j, s, orig[i*n+j])
			}
		}
	}
	return nil
}
