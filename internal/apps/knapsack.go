package apps

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sched"
)

// knapsackApp is Table 1's "knapsack: Recursive branch-and-bound knapsack
// solver, 32 items". Each node explores include/exclude with a fractional
// upper-bound prune against the global best — fine-grained tasks, ~22%
// fence share in Figure 1.
func knapsackApp() App {
	return App{
		Name:       "knapsack",
		Desc:       "Recursive branch-and-bound knapsack solver",
		PaperInput: "32 items (scaled here to 18)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			n := 18
			if size == SizeTest {
				n = 11
			}
			items, capacity := genItems(n)
			want := knapsackDP(items, capacity)
			best := 0
			root := knapsackTask(items, 0, capacity, 0, &best)
			return root, func() error {
				if best != want {
					return fmt.Errorf("knapsack: best %d want %d", best, want)
				}
				return nil
			}
		},
	}
}

type ksItem struct{ weight, value int }

// genItems produces items sorted by value density (descending), which the
// fractional bound requires.
func genItems(n int) ([]ksItem, int) {
	r := rand.New(rand.NewSource(777))
	items := make([]ksItem, n)
	total := 0
	for i := range items {
		items[i] = ksItem{weight: 1 + r.Intn(20), value: 1 + r.Intn(30)}
		total += items[i].weight
	}
	sort.Slice(items, func(i, j int) bool {
		return items[i].value*items[j].weight > items[j].value*items[i].weight
	})
	return items, total / 2
}

// ksBound is the fractional relaxation bound from item i onward.
func ksBound(items []ksItem, i, cap int) int {
	bound := 0
	for ; i < len(items) && cap > 0; i++ {
		if items[i].weight <= cap {
			bound += items[i].value
			cap -= items[i].weight
			continue
		}
		bound += items[i].value * cap / items[i].weight
		return bound
	}
	return bound
}

// knapsackTask explores the include/exclude tree, pruning with the global
// best (meta state; monotone, so stale reads only delay pruning).
func knapsackTask(items []ksItem, i, cap, value int, best *int) sched.TaskFunc {
	return func(w *sched.Worker) {
		w.Work(70)
		if value > *best {
			*best = value
		}
		if i == len(items) || cap == 0 {
			return
		}
		if value+ksBound(items, i, cap) <= *best {
			return // pruned
		}
		children := make([]sched.TaskFunc, 0, 2)
		if items[i].weight <= cap {
			children = append(children, knapsackTask(items, i+1, cap-items[i].weight, value+items[i].value, best))
		}
		children = append(children, knapsackTask(items, i+1, cap, value, best))
		w.Fork(func(w *sched.Worker) { w.Work(7) }, children...)
	}
}

// knapsackDP is the exact reference solution.
func knapsackDP(items []ksItem, capacity int) int {
	dp := make([]int, capacity+1)
	for _, it := range items {
		for c := capacity; c >= it.weight; c-- {
			if v := dp[c-it.weight] + it.value; v > dp[c] {
				dp[c] = v
			}
		}
	}
	return dp[capacity]
}
