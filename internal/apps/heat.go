package apps

import (
	"repro/internal/sched"
)

// heatApp is Table 1's "Heat: Heat diffusion simulation, 4096×1024".
// Explicit finite-difference time stepping on a 2D plate, one row-block
// task per chunk per step with a continuation barrier — the same
// fork-per-timestep structure as the CilkPlus original.
func heatApp() App {
	return App{
		Name:       "Heat",
		Desc:       "Heat diffusion simulation",
		PaperInput: "4096×1024 (scaled here to 96×32, 3 steps)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			nx, ny, steps, blocks := 96, 32, 3, 96
			if size == SizeTest {
				nx, ny, steps, blocks = 10, 8, 3, 2
			}
			cur := make([]float64, nx*ny)
			for i := 0; i < nx; i++ {
				for j := 0; j < ny; j++ {
					cur[i*ny+j] = float64((i*13+j*5)%17) / 17
				}
			}
			next := make([]float64, nx*ny)
			want := heatSerial(cur, nx, ny, steps)
			root := heatStep(&cur, &next, nx, ny, blocks, 0, steps)
			return root, func() error {
				return verifyGrid("heat", cur, want, 1e-12)
			}
		},
	}
}

const heatAlpha = 0.1

// heatRelaxRows advances rows [lo,hi) one explicit Euler step with
// insulated (copied) boundaries.
func heatRelaxRows(dst, src []float64, nx, ny, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < ny; j++ {
			if i == 0 || j == 0 || i == nx-1 || j == ny-1 {
				dst[i*ny+j] = src[i*ny+j]
				continue
			}
			c := src[i*ny+j]
			lap := src[(i-1)*ny+j] + src[(i+1)*ny+j] + src[i*ny+j-1] + src[i*ny+j+1] - 4*c
			dst[i*ny+j] = c + heatAlpha*lap
		}
	}
}

func heatStep(cur, next *[]float64, nx, ny, blocks, t, steps int) sched.TaskFunc {
	return func(w *sched.Worker) {
		if t == steps {
			return
		}
		src, dst := *cur, *next
		children := make([]sched.TaskFunc, 0, blocks)
		for b := 0; b < blocks; b++ {
			lo := b * nx / blocks
			hi := (b + 1) * nx / blocks
			children = append(children, func(w *sched.Worker) {
				w.Work(uint64((hi - lo) * ny * 9))
				heatRelaxRows(dst, src, nx, ny, lo, hi)
			})
		}
		w.Fork(func(w *sched.Worker) {
			*cur, *next = *next, *cur
			w.Work(45)
			heatStep(cur, next, nx, ny, blocks, t+1, steps)(w)
		}, children...)
	}
}

func heatSerial(init []float64, nx, ny, steps int) []float64 {
	cur := append([]float64(nil), init...)
	next := make([]float64, nx*ny)
	for t := 0; t < steps; t++ {
		heatRelaxRows(next, cur, nx, ny, 0, nx)
		cur, next = next, cur
	}
	return cur
}
