// Package apps implements the paper's benchmark suite (Table 1) as
// task-parallel programs over the internal/sched runtime: Fib, Jacobi,
// QuickSort, Matmul, Integrate, knapsack, cholesky, Heat, LUD, strassen and
// fft — the eleven CilkPlus programs of §8.1.
//
// Each app performs its real computation (scaled-down inputs) in meta-level
// Go state and additionally charges Work cycles to the simulated machine to
// model the computation's cost; the per-task granularities are calibrated
// so the suite spans the same fine-grained (Fib) to coarse-grained
// (cholesky) spectrum that gives Figure 1 its shape. Every app returns a
// verifier, so scheduler or queue bugs that corrupt the task graph are
// caught as wrong numeric output, not just wrong timing.
package apps

import (
	"fmt"
	"math"

	"repro/internal/sched"
)

// Size selects input scale.
type Size int

const (
	// SizeTest is small enough for chaos-engine correctness runs.
	SizeTest Size = iota
	// SizeBench is the scale used to regenerate the paper's figures.
	SizeBench
)

// App is one benchmark program.
type App struct {
	// Name matches the paper's Table 1 row.
	Name string
	// Desc is Table 1's description.
	Desc string
	// PaperInput records the input size the paper used, for EXPERIMENTS.md.
	PaperInput string
	// build constructs a fresh root task and result verifier.
	build func(size Size) (sched.TaskFunc, func() error)
}

// Build returns a fresh root task and a verifier to call after the pool
// run completes. Each call creates independent state, so an App can be run
// many times.
func (a App) Build(size Size) (sched.TaskFunc, func() error) {
	return a.build(size)
}

// All lists the suite in the paper's Figure 10 order.
func All() []App {
	return []App{
		fibApp(),
		jacobiApp(),
		quickSortApp(),
		matmulApp(),
		integrateApp(),
		knapsackApp(),
		choleskyApp(),
		heatApp(),
		ludApp(),
		strassenApp(),
		fftApp(),
	}
}

// Figure1Apps lists the seven-program subset shown in Figure 1.
func Figure1Apps() []App {
	byName := map[string]App{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	names := []string{"Fib", "Jacobi", "QuickSort", "Matmul", "Integrate", "knapsack", "cholesky"}
	out := make([]App, len(names))
	for i, n := range names {
		out[i] = byName[n]
	}
	return out
}

// ByName finds an app by its Table 1 name.
func ByName(name string) (App, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// approxEqual compares floats to a relative-ish tolerance suitable for the
// small linear-algebra kernels here.
func approxEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func verifyGrid(name string, got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: result length %d want %d", name, len(got), len(want))
	}
	for i := range got {
		if !approxEqual(got[i], want[i], tol) {
			return fmt.Errorf("%s: element %d = %g want %g", name, i, got[i], want[i])
		}
	}
	return nil
}
