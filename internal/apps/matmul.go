package apps

import (
	"repro/internal/sched"
)

// mat is a dense row-major view into a larger matrix, so recursive
// quadrant decomposition needs no copying.
type mat struct {
	data   []float64
	stride int
	r0, c0 int
	n      int // square block size
}

func newMat(n int) mat {
	return mat{data: make([]float64, n*n), stride: n, n: n}
}

func (m mat) at(i, j int) float64     { return m.data[(m.r0+i)*m.stride+m.c0+j] }
func (m mat) set(i, j int, v float64) { m.data[(m.r0+i)*m.stride+m.c0+j] = v }
func (m mat) add(i, j int, v float64) { m.data[(m.r0+i)*m.stride+m.c0+j] += v }

// quad returns the (qi,qj) quadrant of m (qi,qj in {0,1}).
func (m mat) quad(qi, qj int) mat {
	h := m.n / 2
	return mat{data: m.data, stride: m.stride, r0: m.r0 + qi*h, c0: m.c0 + qj*h, n: h}
}

// mulAddSerial computes C += A×B on n×n views.
func mulAddSerial(c, a, b mat) {
	n := c.n
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := a.at(i, k)
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c.add(i, j, av*b.at(k, j))
			}
		}
	}
}

// matmulApp is Table 1's "Matmul: Matrix multiply, 1024×1024". The
// recursive eight-subproduct decomposition of the CilkPlus original: the
// four C_ij += A_i0×B_0j products fork in parallel, then a continuation
// forks the four C_ij += A_i1×B_1j products (they accumulate into the
// same quadrants, so the phases cannot overlap). Leaf tasks are O(leaf³)
// cycles — coarse, hence the small fence share in Figure 1 (~5%).
func matmulApp() App {
	return App{
		Name:       "Matmul",
		Desc:       "Matrix multiply",
		PaperInput: "1024×1024 (scaled here to 64×64, leaf 8)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			n, leaf := 64, 8
			if size == SizeTest {
				n, leaf = 8, 4
			}
			a := newMat(n)
			b := newMat(n)
			c := newMat(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a.set(i, j, float64((i+j*3)%7)-3)
					b.set(i, j, float64((i*5+j)%5)-2)
				}
			}
			want := newMat(n)
			mulAddSerial(want, a, b)
			root := matmulTask(c, a, b, leaf)
			return root, func() error {
				return verifyGrid("matmul", c.data, want.data, 1e-9)
			}
		},
	}
}

func matmulTask(c, a, b mat, leaf int) sched.TaskFunc {
	return func(w *sched.Worker) {
		if c.n <= leaf {
			w.Work(uint64(3 * c.n * c.n * c.n / 4))
			mulAddSerial(c, a, b)
			return
		}
		phase1 := make([]sched.TaskFunc, 0, 4)
		phase2 := make([]sched.TaskFunc, 0, 4)
		for qi := 0; qi < 2; qi++ {
			for qj := 0; qj < 2; qj++ {
				cq := c.quad(qi, qj)
				phase1 = append(phase1, matmulTask(cq, a.quad(qi, 0), b.quad(0, qj), leaf))
				phase2 = append(phase2, matmulTask(cq, a.quad(qi, 1), b.quad(1, qj), leaf))
			}
		}
		w.Fork(func(w *sched.Worker) {
			w.Work(10)
			w.Fork(func(w *sched.Worker) { w.Work(5) }, phase2...)
		}, phase1...)
	}
}
