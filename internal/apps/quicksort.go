package apps

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sched"
)

// quickSortApp is Table 1's "QuickSort: Recursive QuickSort, 10^8
// elements". Partition work grows with subarray size, so tasks range from
// coarse near the root to fine at the leaves; overall fence share is
// moderate (~11% in Figure 1).
func quickSortApp() App {
	return App{
		Name:       "QuickSort",
		Desc:       "Recursive QuickSort",
		PaperInput: "10^8 elements (scaled here to 8000)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			n := 8000
			if size == SizeTest {
				n = 300
			}
			data := make([]int, n)
			r := rand.New(rand.NewSource(12345))
			for i := range data {
				data[i] = r.Intn(1 << 20)
			}
			var checksum uint64
			for _, v := range data {
				checksum += uint64(v)
			}
			root := qsortTask(data)
			return root, func() error {
				if !sort.IntsAreSorted(data) {
					return fmt.Errorf("quicksort: output not sorted")
				}
				var sum uint64
				for _, v := range data {
					sum += uint64(v)
				}
				if sum != checksum {
					return fmt.Errorf("quicksort: checksum %d want %d (elements lost)", sum, checksum)
				}
				return nil
			}
		},
	}
}

const qsortCutoff = 24

func qsortTask(a []int) sched.TaskFunc {
	return func(w *sched.Worker) {
		if len(a) <= qsortCutoff {
			w.Work(uint64(7*len(a) + 50))
			sort.Ints(a)
			return
		}
		// Median-of-three partition; cost proportional to the scan.
		w.Work(uint64(len(a)))
		p := partition(a)
		w.Fork(func(w *sched.Worker) { w.Work(5) },
			qsortTask(a[:p]),
			qsortTask(a[p+1:]),
		)
	}
}

func partition(a []int) int {
	mid := len(a) / 2
	hi := len(a) - 1
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[hi] < a[0] {
		a[hi], a[0] = a[0], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	a[mid], a[hi-1] = a[hi-1], a[mid]
	pivot := a[hi-1]
	i := 0
	for j := 1; j < hi-1; j++ {
		if a[j] < pivot {
			i++
			if i != j {
				a[i], a[j] = a[j], a[i]
			}
		}
	}
	a[i+1], a[hi-1] = a[hi-1], a[i+1]
	return i + 1
}
