package apps

import (
	"repro/internal/sched"
)

// jacobiApp is Table 1's "Jacobi: Iterative mesh relaxation, 1024×1024".
// Iterations of data-parallel row-block tasks with a barrier
// (continuation) between iterations. Tasks are a few hundred cycles, so
// the fence overhead is mild (Figure 1 shows ~93%, i.e. ~7% fence share).
func jacobiApp() App {
	return App{
		Name:       "Jacobi",
		Desc:       "Iterative mesh relaxation",
		PaperInput: "1024×1024 (scaled here to 96×96, 3 iterations)",
		build: func(size Size) (sched.TaskFunc, func() error) {
			n, iters, blocks := 96, 3, 96
			if size == SizeTest {
				n, iters, blocks = 10, 3, 3
			}
			cur := makeMesh(n, func(i, j int) float64 {
				return float64((i*7+j*3)%11) / 11
			})
			next := make([]float64, n*n)
			want := jacobiSerial(cur, n, iters)
			root := jacobiIter(&cur, &next, n, blocks, 0, iters)
			return root, func() error {
				return verifyGrid("jacobi", cur, want, 1e-12)
			}
		},
	}
}

func makeMesh(n int, f func(i, j int) float64) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i*n+j] = f(i, j)
		}
	}
	return m
}

// jacobiRelaxRows applies one 5-point relaxation to rows [lo,hi) of src
// into dst, keeping the boundary fixed.
func jacobiRelaxRows(dst, src []float64, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			if i == 0 || j == 0 || i == n-1 || j == n-1 {
				dst[i*n+j] = src[i*n+j]
				continue
			}
			dst[i*n+j] = 0.25 * (src[(i-1)*n+j] + src[(i+1)*n+j] + src[i*n+j-1] + src[i*n+j+1])
		}
	}
}

// jacobiIter forks one task per row block, with the continuation swapping
// buffers and starting the next iteration — the fork/join-per-step
// structure of the CilkPlus original.
func jacobiIter(cur, next *[]float64, n, blocks, it, iters int) sched.TaskFunc {
	return func(w *sched.Worker) {
		if it == iters {
			return
		}
		src, dst := *cur, *next
		children := make([]sched.TaskFunc, 0, blocks)
		for b := 0; b < blocks; b++ {
			lo := b * n / blocks
			hi := (b + 1) * n / blocks
			children = append(children, func(w *sched.Worker) {
				w.Work(uint64((hi - lo) * n * 2))
				jacobiRelaxRows(dst, src, n, lo, hi)
			})
		}
		w.Fork(func(w *sched.Worker) {
			*cur, *next = *next, *cur
			w.Work(15)
			jacobiIter(cur, next, n, blocks, it+1, iters)(w)
		}, children...)
	}
}

func jacobiSerial(init []float64, n, iters int) []float64 {
	cur := append([]float64(nil), init...)
	next := make([]float64, n*n)
	for it := 0; it < iters; it++ {
		jacobiRelaxRows(next, cur, n, 0, n)
		cur, next = next, cur
	}
	return cur
}
