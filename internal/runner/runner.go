// Package runner is the experiment-execution engine: a job-graph executor
// that turns the evaluation pipeline's serial sweeps (seed grids, app ×
// algorithm matrices, litmus libraries) into parallel runs over a worker
// pool, without changing a single output byte.
//
// Every simulated machine in this repository is fully independent state —
// each job builds its own tso.Machine, scheduler pool and seeded RNG — so
// the sweeps are embarrassingly parallel. The runner exploits that while
// preserving the properties the pipeline depends on:
//
//   - Determinism: results are returned in submission order regardless of
//     completion order, and jobs carry their own seeds, so a parallel run
//     renders byte-identical figures to a serial one.
//   - Isolation: a panicking job fails that job (with its stack captured
//     in the Outcome), not the process.
//   - Cancellation: the context (typically wired to SIGINT via
//     SignalContext) stops dispatch; jobs not yet started report
//     ctx.Err() instead of running.
//   - Caching: figure-level results can be memoized on disk under
//     results/cache/, keyed by (name, config, code version) — see Cache.
//
// The zero Runner is usable and sizes its pool to GOMAXPROCS; commands
// expose that as the -p flag.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one unit of work: an independent computation identified by Name.
// Fn must not share mutable state with other jobs of the same Run call —
// in this repository that means owning its machine, scheduler and RNG.
type Job struct {
	// Name identifies the job in progress output and error messages; it
	// should be unique within one Run call.
	Name string
	// Fn computes the job's result. It is called at most once, from an
	// arbitrary worker goroutine; it should honour ctx if it runs long.
	Fn func(ctx context.Context) (any, error)
}

// Outcome is one job's result, reported in submission order.
type Outcome struct {
	// Name echoes the job's name.
	Name string
	// Value is what Fn returned; nil when Err is set.
	Value any
	// Err is Fn's error, a *PanicError if the job panicked, or the
	// context error if the run was cancelled before the job started.
	Err error
	// Elapsed is the job's own wall-clock time (zero if never started).
	Elapsed time.Duration
}

// PanicError is the error recorded for a job whose Fn panicked: the job
// fails, the worker pool and the process survive.
type PanicError struct {
	// Job is the panicking job's name.
	Job string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error describes the captured panic without the stack (which callers can
// print separately when wanted).
func (e *PanicError) Error() string {
	return fmt.Sprintf("job %s panicked: %v", e.Job, e.Value)
}

// Runner executes jobs on a bounded worker pool. The zero value runs on
// GOMAXPROCS workers with no progress reporting; a Runner is stateless
// between Run calls and safe to reuse.
type Runner struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is notified as jobs finish.
	Progress *Progress
}

// New returns a Runner with the given pool size (<= 0: GOMAXPROCS).
func New(workers int) *Runner { return &Runner{Workers: workers} }

// effectiveWorkers resolves the pool size for n jobs.
func (r *Runner) effectiveWorkers(n int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the jobs and returns their outcomes in submission order,
// whatever order they completed in. It always returns len(jobs) outcomes:
// a cancelled run marks the jobs that never started with ctx's error
// rather than dropping them. Run itself never panics on a job panic.
func (r *Runner) Run(ctx context.Context, jobs []Job) []Outcome {
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if r.Progress != nil {
		r.Progress.AddTotal(len(jobs))
	}
	workers := r.effectiveWorkers(len(jobs))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) {
					return
				}
				out[i] = r.runOne(ctx, jobs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// runOne executes a single job with panic capture and cancellation check.
func (r *Runner) runOne(ctx context.Context, job Job) (o Outcome) {
	o.Name = job.Name
	if err := ctx.Err(); err != nil {
		o.Err = err
		if r.Progress != nil {
			r.Progress.JobDone(o.Name, 0, o.Err)
		}
		return o
	}
	start := time.Now()
	defer func() {
		o.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			o.Err = &PanicError{Job: job.Name, Value: p, Stack: debug.Stack()}
			o.Value = nil
		}
		if r.Progress != nil {
			r.Progress.JobDone(o.Name, o.Elapsed, o.Err)
		}
	}()
	o.Value, o.Err = job.Fn(ctx)
	return o
}

// Map runs fn over items on r's pool and returns the outputs in item
// order — the typed fan-out used by the sweep retrofits. name labels the
// i'th job for progress and errors. A nil Runner means a fresh
// single-worker pool (serial execution with identical semantics). The
// first failure in item order is returned, wrapped with its job name; a
// panic inside fn surfaces here as a *PanicError.
func Map[I, O any](ctx context.Context, r *Runner, items []I,
	name func(i int, item I) string, fn func(ctx context.Context, item I) (O, error)) ([]O, error) {
	if r == nil {
		r = &Runner{Workers: 1}
	}
	jobs := make([]Job, len(items))
	for i, item := range items {
		i, item := i, item
		jobs[i] = Job{
			Name: name(i, item),
			Fn:   func(ctx context.Context) (any, error) { return fn(ctx, item) },
		}
	}
	outcomes := r.Run(ctx, jobs)
	out := make([]O, len(items))
	for i, oc := range outcomes {
		if oc.Err != nil {
			return nil, fmt.Errorf("%s: %w", oc.Name, oc.Err)
		}
		v, ok := oc.Value.(O)
		if !ok && oc.Value != nil {
			return nil, fmt.Errorf("%s: result type %T does not match", oc.Name, oc.Value)
		}
		out[i] = v
	}
	return out, nil
}
