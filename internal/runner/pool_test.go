package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunsAll: every accepted job's done callback fires exactly once
// with its value, across many jobs and workers.
func TestPoolRunsAll(t *testing.T) {
	p := NewPool(context.Background(), 4)
	const n = 100
	var sum atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		err := p.Go(Job{
			Name: "job",
			Fn:   func(context.Context) (any, error) { return i, nil },
		}, func(o Outcome) {
			defer wg.Done()
			if o.Err != nil {
				t.Errorf("job failed: %v", o.Err)
				return
			}
			sum.Add(int64(o.Value.(int)))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	p.Close(true)
	if got, want := sum.Load(), int64(n*(n-1)/2); got != want {
		t.Fatalf("sum of results %d, want %d", got, want)
	}
	if err := p.Go(Job{}, nil); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Go after Close = %v, want ErrPoolClosed", err)
	}
}

// TestPoolPanicIsolation: a panicking job reports a *PanicError through
// its callback and the pool keeps serving.
func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(context.Background(), 1)
	defer p.Close(false)
	outc := make(chan Outcome, 2)
	done := func(o Outcome) { outc <- o }
	if err := p.Go(Job{Name: "boom", Fn: func(context.Context) (any, error) { panic("kaput") }}, done); err != nil {
		t.Fatal(err)
	}
	if err := p.Go(Job{Name: "after", Fn: func(context.Context) (any, error) { return "ok", nil }}, done); err != nil {
		t.Fatal(err)
	}
	o := <-outc
	var pe *PanicError
	if !errors.As(o.Err, &pe) || pe.Value != "kaput" {
		t.Fatalf("panic outcome = %+v", o)
	}
	if o = <-outc; o.Err != nil || o.Value != "ok" {
		t.Fatalf("job after panic = %+v", o)
	}
}

// TestPoolHardClose: Close(false) cancels the pool context, so queued
// jobs complete with the cancellation error instead of running, and a
// running job observes the cancellation through its ctx.
func TestPoolHardClose(t *testing.T) {
	p := NewPool(context.Background(), 1)
	started := make(chan struct{})
	var blocker, queued Outcome
	var wg sync.WaitGroup
	wg.Add(2)
	if err := p.Go(Job{Name: "blocker", Fn: func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // released by Close(false)'s cancellation
		return nil, ctx.Err()
	}}, func(o Outcome) { blocker = o; wg.Done() }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := p.Go(Job{Name: "queued", Fn: func(context.Context) (any, error) {
		ran = true
		return nil, nil
	}}, func(o Outcome) { queued = o; wg.Done() }); err != nil {
		t.Fatal(err)
	}
	<-started
	p.Close(false)
	wg.Wait()
	if !errors.Is(blocker.Err, context.Canceled) {
		t.Fatalf("running job did not observe cancellation: %+v", blocker)
	}
	if ran || !errors.Is(queued.Err, context.Canceled) {
		t.Fatalf("queued job ran=%v err=%v, want skipped with context.Canceled", ran, queued.Err)
	}
}

// TestPoolCloseDrains: Close(true) runs everything already accepted.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(context.Background(), 2)
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		if err := p.Go(Job{Name: "j", Fn: func(context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	p.Close(true)
	if ran.Load() != 20 {
		t.Fatalf("drained close ran %d of 20 jobs", ran.Load())
	}
	if p.Queued() != 0 {
		t.Fatalf("queue not empty after drain: %d", p.Queued())
	}
}
