package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderIndependentOfCompletion(t *testing.T) {
	// Jobs sleep in reverse proportion to their index, so under a wide
	// pool the last-submitted job finishes first; the outcomes must still
	// come back in submission order.
	const n = 16
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{
			Name: fmt.Sprintf("job%02d", i),
			Fn: func(context.Context) (any, error) {
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	out := New(n).Run(context.Background(), jobs)
	if len(out) != n {
		t.Fatalf("got %d outcomes want %d", len(out), n)
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Name, o.Err)
		}
		if o.Name != fmt.Sprintf("job%02d", i) || o.Value.(int) != i*i {
			t.Fatalf("outcome %d out of order: %+v", i, o)
		}
	}
}

func TestRunWorkerPoolBound(t *testing.T) {
	var cur, peak atomic.Int64
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Fn: func(context.Context) (any, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil, nil
		}}
	}
	New(3).Run(context.Background(), jobs)
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size 3", p)
	}
}

func TestRunCancellationMidSweep(t *testing.T) {
	// A single worker guarantees serial dispatch; the third job cancels
	// the context, so everything after it must be marked cancelled
	// without having run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Fn: func(context.Context) (any, error) {
			ran.Add(1)
			if i == 2 {
				cancel()
			}
			return i, nil
		}}
	}
	out := New(1).Run(ctx, jobs)
	if ran.Load() != 3 {
		t.Fatalf("ran %d jobs want 3", ran.Load())
	}
	for i, o := range out {
		if i <= 2 && o.Err != nil {
			t.Fatalf("job %d unexpectedly failed: %v", i, o.Err)
		}
		if i > 2 && !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("job %d: err=%v want context.Canceled", i, o.Err)
		}
	}
}

func TestRunPanicIsolation(t *testing.T) {
	jobs := []Job{
		{Name: "ok1", Fn: func(context.Context) (any, error) { return "a", nil }},
		{Name: "boom", Fn: func(context.Context) (any, error) { panic("simulated crash") }},
		{Name: "ok2", Fn: func(context.Context) (any, error) { return "b", nil }},
	}
	out := New(2).Run(context.Background(), jobs)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", out[0].Err, out[2].Err)
	}
	var pe *PanicError
	if !errors.As(out[1].Err, &pe) {
		t.Fatalf("panicking job err = %v, want *PanicError", out[1].Err)
	}
	if pe.Job != "boom" || pe.Value != "simulated crash" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestMapTypedFanOut(t *testing.T) {
	items := []int{3, 1, 4, 1, 5, 9}
	name := func(i int, v int) string { return fmt.Sprintf("sq%d", i) }
	got, err := Map(context.Background(), New(4), items, name,
		func(_ context.Context, v int) (int, error) { return v * v, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range items {
		if got[i] != v*v {
			t.Fatalf("got[%d]=%d want %d", i, got[i], v*v)
		}
	}

	// A nil runner is the serial path with identical results.
	serial, err := Map(context.Background(), nil, items, name,
		func(_ context.Context, v int) (int, error) { return v * v, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != serial[i] {
			t.Fatalf("serial/parallel mismatch at %d: %d vs %d", i, serial[i], got[i])
		}
	}

	// The first failing item (in item order) is reported with its name.
	_, err = Map(context.Background(), New(4), items, name,
		func(_ context.Context, v int) (int, error) {
			if v == 4 {
				return 0, errors.New("bad item")
			}
			return v, nil
		})
	if err == nil || !strings.Contains(err.Error(), "sq2") {
		t.Fatalf("err = %v, want wrapped sq2 failure", err)
	}
}

func TestProgressCounts(t *testing.T) {
	// Total starts at zero; Run announces the batch size via AddTotal.
	var buf strings.Builder
	p := NewProgress(&buf, "test sweep", 0)
	r := New(2)
	r.Progress = p
	jobs := make([]Job, 4)
	for i := range jobs {
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Fn: func(context.Context) (any, error) { return nil, nil }}
	}
	r.Run(context.Background(), jobs)
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "4/4") || !strings.Contains(out, "4 jobs in") {
		t.Fatalf("progress output missing counts: %q", out)
	}
}

type cacheCfg struct {
	Seeds int       `json:"seeds"`
	Bias  []float64 `json:"bias"`
}

func TestCacheHitMissInvalidation(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cacheCfg{Seeds: 5, Bias: []float64{0.02, 0.4}}
	calls := 0
	compute := func() ([]float64, error) { calls++; return []float64{1.5, 2.25}, nil }

	v, hit, err := Cached(c, "fig", cfg, compute)
	if err != nil || hit || calls != 1 {
		t.Fatalf("first call: v=%v hit=%v err=%v calls=%d", v, hit, err, calls)
	}
	v, hit, err = Cached(c, "fig", cfg, compute)
	if err != nil || !hit || calls != 1 {
		t.Fatalf("second call not a hit: hit=%v err=%v calls=%d", hit, err, calls)
	}
	if len(v) != 2 || v[0] != 1.5 || v[1] != 2.25 {
		t.Fatalf("cached value corrupted: %v", v)
	}

	// Different config → miss.
	cfg2 := cfg
	cfg2.Seeds = 6
	if _, hit, _ := Cached(c, "fig", cfg2, compute); hit {
		t.Fatal("different config unexpectedly hit")
	}
	// Different experiment name → miss.
	if _, hit, _ := Cached(c, "other", cfg, compute); hit {
		t.Fatal("different name unexpectedly hit")
	}
	// New code version → miss (recompile invalidation).
	c2 := &Cache{Dir: dir, Version: c.Version + "-next"}
	if _, hit, _ := Cached(c2, "fig", cfg, compute); hit {
		t.Fatal("new code version unexpectedly hit")
	}
	// Corrupt entry → miss, then repaired by the recompute.
	ents, err := filepath.Glob(filepath.Join(dir, "fig-*.json"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("no cache files found: %v", err)
	}
	for _, e := range ents {
		if err := os.WriteFile(e, []byte("{truncated"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	before := calls
	if _, hit, err := Cached(c, "fig", cfg, compute); hit || err != nil || calls != before+1 {
		t.Fatalf("corrupt entry not treated as miss: hit=%v err=%v", hit, err)
	}
	if _, hit, _ := Cached(c, "fig", cfg, compute); !hit {
		t.Fatal("repaired entry should hit")
	}
}

func TestCacheNilDegeneratesToCompute(t *testing.T) {
	calls := 0
	v, hit, err := Cached[int](nil, "x", 1, func() (int, error) { calls++; return 7, nil })
	if v != 7 || hit || err != nil || calls != 1 {
		t.Fatalf("nil cache: v=%d hit=%v err=%v calls=%d", v, hit, err, calls)
	}
}

func TestCodeVersionStable(t *testing.T) {
	a, b := CodeVersion(), CodeVersion()
	if a == "" || a != b {
		t.Fatalf("CodeVersion unstable: %q vs %q", a, b)
	}
}

func TestSignalContextCancel(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop did not cancel the context")
	}
}
