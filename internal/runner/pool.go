package runner

import (
	"context"
	"errors"
	"sync"
)

// ErrPoolClosed is returned by Pool.Go after Close: the pool accepts no
// further jobs.
var ErrPoolClosed = errors.New("runner: pool closed")

// Pool is the long-lived counterpart of Runner.Run: a fixed set of
// worker goroutines draining an unbounded FIFO of jobs submitted one at
// a time, for callers whose work arrives over time (the verification
// service's dispatcher) rather than as a batch. It keeps Runner's
// guarantees — a panicking job fails that job, not the process, and jobs
// not started before cancellation report the context error — and adds a
// per-job completion callback, since a long-lived pool has no single
// "all outcomes" return point.
//
// The queue is deliberately unbounded: dispatchers re-enqueue follow-up
// slices from completion callbacks, which would deadlock against a full
// bounded queue. Admission control belongs upstream, at the boundary
// where new work enters (the service's job intake).
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []poolJob
	closed bool
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// poolJob pairs a job with its completion callback.
type poolJob struct {
	job  Job
	done func(Outcome)
}

// NewPool starts workers goroutines (minimum 1) draining the pool's
// queue. Cancelling ctx makes queued-but-unstarted jobs complete with
// ctx's error; running jobs observe it through their own ctx argument.
func NewPool(ctx context.Context, workers int) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.ctx, p.cancel = context.WithCancel(ctx)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Go enqueues a job. done (optional) is invoked with the job's Outcome
// from the worker goroutine that ran it — including the panic and
// cancellation outcomes — exactly once per accepted job. Returns
// ErrPoolClosed after Close.
func (p *Pool) Go(job Job, done func(Outcome)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.queue = append(p.queue, poolJob{job: job, done: done})
	p.cond.Signal()
	return nil
}

// Queued reports the number of accepted jobs not yet picked up by a
// worker.
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Close stops intake and waits for the workers to exit. When runQueued
// is true the workers first drain the jobs already accepted; otherwise
// the pool context is cancelled, so queued jobs complete with the
// context error and running jobs are told to stop. Close is idempotent;
// concurrent Go calls during Close get ErrPoolClosed.
func (p *Pool) Close(runQueued bool) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		if !runQueued {
			p.cancel()
		}
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
	p.cancel()
}

// worker drains the queue until the pool is closed and empty.
func (p *Pool) worker() {
	defer p.wg.Done()
	r := &Runner{}
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		pj := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		// runOne checks p.ctx first, so after a hard Close (runQueued
		// false) still-queued jobs report the cancellation error without
		// running.
		o := r.runOne(p.ctx, pj.job)
		if pj.done != nil {
			pj.done(o)
		}
	}
}
