package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
)

// Cache memoizes figure-level experiment results on disk so re-runs of
// cmd/reproduce skip already-computed figures. Entries are keyed by a
// hash of (experiment name, JSON-encoded configuration, code version), so
// changing the parameters — or recompiling the binary — invalidates them
// automatically; stale files are simply never looked up again. Values
// round-trip through encoding/json, which preserves every integer and
// float64 exactly, so a cache hit renders byte-identical output to a
// fresh computation.
type Cache struct {
	// Dir is the cache directory (conventionally "results/cache").
	Dir string
	// Version is the code-version component of every key; OpenCache sets
	// it to a hash of the running executable. Tests may override it to
	// exercise invalidation.
	Version string
}

// DefaultCacheDir is where the commands keep their result cache.
const DefaultCacheDir = "results/cache"

// OpenCache creates dir if needed and returns a cache whose Version is
// the running executable's content hash (recompiles invalidate).
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &Cache{Dir: dir, Version: CodeVersion()}, nil
}

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

// CodeVersion identifies the running build for cache invalidation: the
// SHA-256 of the executable file itself when readable (any recompile
// changes it), otherwise the VCS revision from build info, otherwise
// "unversioned".
func CodeVersion() string {
	codeVersionOnce.Do(func() {
		codeVersion = computeCodeVersion()
	})
	return codeVersion
}

// computeCodeVersion does the one-time work behind CodeVersion.
func computeCodeVersion() string {
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return "exe-" + hex.EncodeToString(h.Sum(nil))[:16]
			}
		}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return "vcs-" + s.Value
			}
		}
	}
	return "unversioned"
}

// cacheEnvelope is the on-disk record; name and version are stored so a
// (vanishingly unlikely) filename collision is detected rather than
// served.
type cacheEnvelope struct {
	Name    string          `json:"name"`
	Version string          `json:"version"`
	Data    json.RawMessage `json:"data"`
}

// path derives the entry filename from the key hash.
func (c *Cache) path(name string, config any) (string, error) {
	cfg, err := json.Marshal(config)
	if err != nil {
		return "", fmt.Errorf("runner: cache config for %s: %w", name, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s", c.Version, name, cfg)
	return filepath.Join(c.Dir, fmt.Sprintf("%s-%s.json", name, hex.EncodeToString(h.Sum(nil))[:16])), nil
}

// CacheGet looks name+config up in c and decodes the stored value into
// T. The second result reports a hit; every failure mode (nil cache,
// missing file, corrupt JSON, mismatched envelope) is a miss.
func CacheGet[T any](c *Cache, name string, config any) (T, bool) {
	var zero T
	if c == nil {
		return zero, false
	}
	p, err := c.path(name, config)
	if err != nil {
		return zero, false
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		return zero, false
	}
	var env cacheEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Name != name || env.Version != c.Version {
		return zero, false
	}
	var v T
	if err := json.Unmarshal(env.Data, &v); err != nil {
		return zero, false
	}
	return v, true
}

// CachePut stores v under name+config. Writes go through a temp file and
// rename so an interrupted run never leaves a half-written entry.
func CachePut[T any](c *Cache, name string, config any, v T) error {
	if c == nil {
		return nil
	}
	p, err := c.path(name, config)
	if err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: cache encode %s: %w", name, err)
	}
	env, err := json.Marshal(cacheEnvelope{Name: name, Version: c.Version, Data: data})
	if err != nil {
		return fmt.Errorf("runner: cache envelope %s: %w", name, err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, env, 0o644); err != nil {
		return fmt.Errorf("runner: cache write %s: %w", name, err)
	}
	return os.Rename(tmp, p)
}

// Cached returns the cache entry for name+config when present, otherwise
// runs compute and stores its result. The bool reports a cache hit. With
// a nil cache it degenerates to compute(). A failed store is returned as
// an error (the computed value is still returned alongside it).
func Cached[T any](c *Cache, name string, config any, compute func() (T, error)) (T, bool, error) {
	if v, ok := CacheGet[T](c, name, config); ok {
		return v, true, nil
	}
	v, err := compute()
	if err != nil {
		return v, false, err
	}
	return v, false, CachePut(c, name, config, v)
}
