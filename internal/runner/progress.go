package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress reports sweep completion (done/total, percent, ETA) as jobs
// finish. It writes carriage-return-refreshed lines so it belongs on
// stderr, keeping stdout byte-identical between serial and parallel runs
// (and between runs of different speed). A nil writer disables output but
// still counts, so per-section timing remains queryable via Elapsed.
type Progress struct {
	mu     sync.Mutex
	w      io.Writer
	label  string
	total  int
	done   int
	failed int
	start  time.Time
	paint  time.Time
	wrote  bool
}

// NewProgress starts a progress report of total jobs labelled label,
// written to w (nil: silent). A zero total is fine: Runner.Run adds each
// batch's job count via AddTotal as it starts.
func NewProgress(w io.Writer, label string, total int) *Progress {
	return &Progress{w: w, label: label, total: total, start: time.Now()}
}

// AddTotal grows the expected job count; Runner.Run calls this with the
// batch size so commands need not pre-count a sweep's jobs.
func (p *Progress) AddTotal(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total += n
}

// JobDone records one finished job; Runner.Run calls this for every job
// (including cancelled and panicked ones, which count as failures).
func (p *Progress) JobDone(name string, elapsed time.Duration, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if err != nil {
		p.failed++
	}
	// Fast sweeps finish thousands of jobs per second; repainting each
	// one floods a redirected stderr, so throttle to ~10 frames/s (always
	// painting failures and the final job).
	if err == nil && p.done < p.total && time.Since(p.paint) < 100*time.Millisecond {
		return
	}
	p.paint = time.Now()
	p.render()
}

// render repaints the status line; callers hold p.mu.
func (p *Progress) render() {
	if p.w == nil || p.total == 0 {
		return
	}
	pct := 100 * p.done / p.total
	line := fmt.Sprintf("%s: %d/%d (%d%%)", p.label, p.done, p.total, pct)
	if p.failed > 0 {
		line += fmt.Sprintf(", %d failed", p.failed)
	}
	if eta := p.eta(); p.done < p.total && eta > 0 {
		line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
	}
	fmt.Fprintf(p.w, "\r%-60s", line)
	p.wrote = true
}

// eta extrapolates the remaining time from the average job rate so far;
// callers hold p.mu.
func (p *Progress) eta() time.Duration {
	if p.done == 0 {
		return 0
	}
	perJob := time.Since(p.start) / time.Duration(p.done)
	return perJob * time.Duration(p.total-p.done)
}

// Elapsed is the wall-clock time since the progress report started.
func (p *Progress) Elapsed() time.Duration { return time.Since(p.start) }

// Finish terminates the status line with a per-section timing summary
// ("label: 40 jobs in 1.2s"), again on the progress writer, not stdout.
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.w == nil || !p.wrote {
		return
	}
	summary := fmt.Sprintf("%s: %d jobs in %s", p.label, p.done, p.Elapsed().Round(time.Millisecond))
	if p.failed > 0 {
		summary += fmt.Sprintf(" (%d failed)", p.failed)
	}
	fmt.Fprintf(p.w, "\r%-60s\n", summary)
}
