package runner

// Profiling support for the experiment commands: every cmd exposes
// -cpuprofile/-memprofile backed by StartProfiles, so engine-level
// optimisation work (the channel-free execution substrate, the pruned
// model checker) can be driven by pprof evidence instead of guesses.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath and arranges for a heap
// profile to be written to memPath; either path may be empty to skip that
// profile. The returned stop function flushes and closes both profiles;
// calls after the first are no-ops, so a main may both defer it and invoke
// it explicitly before an os.Exit path such as log.Fatalf. When both paths
// are empty, StartProfiles is a no-op returning a no-op stop.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("runner: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("runner: starting CPU profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("runner: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("runner: creating heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("runner: writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
