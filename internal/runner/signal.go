package runner

import (
	"context"
	"os"
	"os/signal"
)

// SignalContext derives a context that is cancelled by the first SIGINT,
// for wiring ^C into a sweep: in-flight jobs finish, jobs not yet started
// report context.Canceled, and the command can render the partial state
// it has. After the first signal the handler is released, so a second ^C
// kills the process the default way — the standard escalation contract.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}
