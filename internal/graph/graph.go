// Package graph provides the §8.2 workloads: parallel transitive closure
// and spanning tree over the three input families of Figure 11 (K-regular
// graph, random graph, 2D torus).
//
// The parallel algorithms follow Michael et al.'s benchmarks (via Bader &
// Cong): a task visits one node and spawns visits for its unvisited
// neighbours. The visit synchronizes internally (test-and-set on the
// node's visited/parent word), because the same visit task can inherently
// be executed more than once — which is exactly what makes these workloads
// suitable clients for the idempotent queues, and is why they are safe on
// them.
package graph

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
)

// Graph is an adjacency-list graph with nodes 0..N-1.
type Graph struct {
	N   int
	Adj [][]int32
}

// Edges returns the total directed edge count.
func (g *Graph) Edges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

func (g *Graph) addEdge(u, v int) {
	if u == v {
		return
	}
	g.Adj[u] = append(g.Adj[u], int32(v))
	g.Adj[v] = append(g.Adj[v], int32(u))
}

// KGraph builds the paper's K-graph: a K-regular graph where node i is
// connected to the next k nodes around a ring, giving uniform degree 2k.
func KGraph(n, k int) *Graph {
	if n < 2 || k < 1 || k >= n {
		panic(fmt.Sprintf("graph: bad KGraph(%d, %d)", n, k))
	}
	g := &Graph{N: n, Adj: make([][]int32, n)}
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			g.addEdge(i, (i+d)%n)
		}
	}
	return g
}

// Random builds a random undirected graph with n nodes and m edges, plus a
// Hamiltonian backbone so it is connected (matching the paper's use of a
// single traversal covering the graph).
func Random(n, m int, seed int64) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: bad Random(%d, %d)", n, m))
	}
	g := &Graph{N: n, Adj: make([][]int32, n)}
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		g.addEdge(perm[i-1], perm[i])
	}
	for e := n - 1; e < m; e++ {
		g.addEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

// Torus builds a w×h 2D torus (each node has 4 neighbours with
// wraparound), the paper's hardest-to-parallelize input.
func Torus(w, h int) *Graph {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("graph: bad Torus(%d, %d)", w, h))
	}
	g := &Graph{N: w * h, Adj: make([][]int32, w*h)}
	id := func(x, y int) int { return (y%h+h)%h*w + (x%w+w)%w }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.addEdge(id(x, y), id(x+1, y))
			g.addEdge(id(x, y), id(x, y+1))
		}
	}
	return g
}

// bfsReachable is the serial reference: the set of nodes reachable from
// root.
func bfsReachable(g *Graph, root int) []bool {
	seen := make([]bool, g.N)
	seen[root] = true
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, int(v))
			}
		}
	}
	return seen
}

// visitWork models the cost of scanning a node's adjacency list.
func visitWork(deg int) uint64 { return uint64(70 + 10*deg) }

// TransitiveClosure builds the parallel reachability workload from root:
// the returned root task spawns the traversal, and the verifier checks the
// visited set against serial BFS. Safe on idempotent queues: a duplicated
// visit observes visited[u] already set and spawns nothing.
func TransitiveClosure(g *Graph, root int) (sched.TaskFunc, func() error) {
	visited := make([]bool, g.N)
	var visit func(u int32) sched.TaskFunc
	visit = func(u int32) sched.TaskFunc {
		return func(w *sched.Worker) {
			if visited[u] {
				w.Work(4)
				return
			}
			visited[u] = true
			w.Work(visitWork(len(g.Adj[u])))
			for _, v := range g.Adj[u] {
				if !visited[v] {
					w.Spawn(visit(v))
				}
			}
		}
	}
	verify := func() error {
		want := bfsReachable(g, root)
		for i := range want {
			if visited[i] != want[i] {
				return fmt.Errorf("transitive closure: node %d visited=%v want %v", i, visited[i], want[i])
			}
		}
		return nil
	}
	return visit(int32(root)), verify
}

// SpanningTree builds the parallel spanning-tree workload: each first
// visit claims unclaimed neighbours as children before spawning their
// visits, so the parent pointers form a tree over the reachable set.
func SpanningTree(g *Graph, root int) (sched.TaskFunc, func() error) {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = int32(root)
	var visit func(u int32) sched.TaskFunc
	visit = func(u int32) sched.TaskFunc {
		return func(w *sched.Worker) {
			w.Work(visitWork(len(g.Adj[u])))
			for _, v := range g.Adj[u] {
				if parent[v] == -1 {
					parent[v] = u
					w.Spawn(visit(v))
				}
			}
		}
	}
	verify := func() error {
		want := bfsReachable(g, root)
		for i := range want {
			if want[i] != (parent[i] != -1) {
				return fmt.Errorf("spanning tree: node %d coverage mismatch", i)
			}
		}
		// Walking parent pointers from every node must reach the root
		// without exceeding N hops (i.e. the parents form a tree).
		for i := range want {
			if !want[i] {
				continue
			}
			u, hops := int32(i), 0
			for u != int32(root) {
				u = parent[u]
				hops++
				if hops > g.N {
					return fmt.Errorf("spanning tree: cycle reached from node %d", i)
				}
			}
		}
		return nil
	}
	return visit(int32(root)), verify
}

// Workload names one Figure 11 input with its construction.
type Workload struct {
	Name    string
	Build   func() *Graph
	Threads int // paper's thread count for this input (torus scales to 2)
}

// Figure11Workloads returns the three inputs of Figure 11 at the given
// scale; maxThreads is the machine's core count (the torus caps at 2, as
// in the paper).
func Figure11Workloads(scale int, maxThreads int) []Workload {
	torusThreads := 2
	if maxThreads < 2 {
		torusThreads = maxThreads
	}
	return []Workload{
		{
			Name:    fmt.Sprintf("K-Graph (%d nodes)", 2*scale),
			Build:   func() *Graph { return KGraph(2*scale, 3) },
			Threads: maxThreads,
		},
		{
			Name:    fmt.Sprintf("Random (%d nodes, %d edges)", 2*scale, 6*scale),
			Build:   func() *Graph { return Random(2*scale, 6*scale, 42) },
			Threads: maxThreads,
		},
		{
			Name:    "Torus (2400 nodes, 2 threads)",
			Build:   func() *Graph { return Torus(60, 40) },
			Threads: torusThreads,
		},
	}
}
