package graph

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tso"
)

func TestGenerators(t *testing.T) {
	k := KGraph(20, 3)
	if k.N != 20 {
		t.Fatalf("kgraph N=%d", k.N)
	}
	for i, adj := range k.Adj {
		if len(adj) != 6 { // k neighbours each direction
			t.Fatalf("kgraph node %d degree %d want 6", i, len(adj))
		}
	}
	r := Random(30, 60, 1)
	if r.N != 30 {
		t.Fatalf("random N=%d", r.N)
	}
	if got := r.Edges(); got < 2*(30-1) {
		t.Fatalf("random edges %d want >= backbone", got)
	}
	to := Torus(6, 5)
	if to.N != 30 {
		t.Fatalf("torus N=%d", to.N)
	}
	for i, adj := range to.Adj {
		if len(adj) != 4 {
			t.Fatalf("torus node %d degree %d want 4", i, len(adj))
		}
	}
}

func TestGeneratorsConnected(t *testing.T) {
	for name, g := range map[string]*Graph{
		"kgraph": KGraph(50, 2),
		"random": Random(50, 80, 3),
		"torus":  Torus(10, 5),
	} {
		seen := bfsReachable(g, 0)
		for i, s := range seen {
			if !s {
				t.Fatalf("%s: node %d unreachable", name, i)
			}
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { KGraph(1, 1) },
		func() { KGraph(5, 5) },
		func() { Random(1, 0, 0) },
		func() { Torus(1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad generator arguments did not panic")
				}
			}()
			fn()
		}()
	}
}

func runWorkload(t *testing.T, algo core.Algo, delta int, seed int64,
	build func(*Graph, int) (sched.TaskFunc, func() error)) sched.Stats {
	t.Helper()
	g := Torus(8, 6)
	m := tso.NewMachine(tso.Config{Threads: 2, BufferSize: 4, Seed: seed, DrainBias: 0.15})
	p := sched.NewPool(m, sched.Options{Algo: algo, Delta: delta, Seed: seed})
	root, verify := build(g, 0)
	st, err := p.Run(root)
	if err != nil {
		t.Fatalf("%v seed %d: %v", algo, seed, err)
	}
	if err := verify(); err != nil {
		t.Fatalf("%v seed %d: %v", algo, seed, err)
	}
	return st
}

func TestTransitiveClosureAllAlgos(t *testing.T) {
	for _, algo := range core.Algos {
		for seed := int64(0); seed < 6; seed++ {
			runWorkload(t, algo, 2, seed, TransitiveClosure)
		}
	}
}

func TestSpanningTreeAllAlgos(t *testing.T) {
	for _, algo := range core.Algos {
		for seed := int64(0); seed < 6; seed++ {
			runWorkload(t, algo, 2, seed, SpanningTree)
		}
	}
}

// TestIdempotentDuplicatesTolerated runs the closure under heavy reordering
// on the idempotent LIFO: duplicated visits must not corrupt the result.
func TestIdempotentDuplicatesTolerated(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := KGraph(60, 2)
		m := tso.NewMachine(tso.Config{Threads: 3, BufferSize: 4, Seed: seed, DrainBias: 0.05})
		p := sched.NewPool(m, sched.Options{Algo: core.AlgoIdempotentLIFO, Seed: seed})
		root, verify := TransitiveClosure(g, 0)
		if _, err := p.Run(root); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestFigure11Workloads(t *testing.T) {
	ws := Figure11Workloads(100, 4)
	if len(ws) != 3 {
		t.Fatalf("want 3 workloads, got %d", len(ws))
	}
	if ws[2].Threads != 2 {
		t.Fatalf("torus threads = %d want 2", ws[2].Threads)
	}
	for _, w := range ws {
		g := w.Build()
		if g.N < 100 {
			t.Fatalf("%s: suspiciously small graph (%d nodes)", w.Name, g.N)
		}
		seen := bfsReachable(g, 0)
		for i, s := range seen {
			if !s {
				t.Fatalf("%s: node %d unreachable", w.Name, i)
			}
		}
	}
}

func TestWorkloadsOnTimedEngine(t *testing.T) {
	g := KGraph(120, 2)
	m := tso.NewTimedMachine(tso.Config{Threads: 4, BufferSize: 33})
	p := sched.NewPool(m, sched.Options{Algo: core.AlgoChaseLev, Seed: 7})
	root, verify := TransitiveClosure(g, 0)
	st, err := p.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify(); err != nil {
		t.Fatal(err)
	}
	if st.Elapsed == 0 {
		t.Fatal("no virtual time elapsed")
	}
}
