package serve

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestJobSpecDPORRejectsReorder pins the intake rule: a DPOR job with a
// reorder bound classifies under ErrBadDPOR, distinct from the other
// envelope sentinels.
func TestJobSpecDPORRejectsReorder(t *testing.T) {
	js := smallSpec()
	js.DPOR = true
	js.MaxReorderings = 2
	if _, _, err := js.Compile(); !errors.Is(err, ErrBadDPOR) {
		t.Fatalf("Compile = %v, want ErrBadDPOR", err)
	}
	js.MaxReorderings = 0
	if _, _, err := js.Compile(); err != nil {
		t.Fatalf("DPOR alone must compile: %v", err)
	}
}

// TestDPORJobPreservesVerdictSet runs the same workload as a plain job
// and a DPOR job and requires the same completeness, the same verdict
// *set*, and the same violation existence. Counts are not compared: a
// DPOR job tallies class representatives. The DPOR engine statistics
// must also surface in the job result and the Prometheus exposition.
func TestDPORJobPreservesVerdictSet(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, SliceRuns: 1 << 20})
	defer s.Drain()

	plain, err := s.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec()
	spec.DPOR = true
	dpor, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	pst := waitServer(t, s, plain.ID, 120*time.Second)
	dst := waitServer(t, s, dpor.ID, 120*time.Second)
	if pst.State != StateDone || dst.State != StateDone {
		t.Fatalf("jobs did not finish: plain=%+v dpor=%+v", pst, dst)
	}
	pr, dr := pst.Result, dst.Result
	if !pr.Complete || !dr.Complete {
		t.Fatalf("incomplete: plain=%v dpor=%v", pr.Complete, dr.Complete)
	}
	for o := range pr.Outcomes {
		if dr.Outcomes[o] == 0 {
			t.Errorf("verdict %q lost under DPOR (got %v)", o, dr.Outcomes)
		}
	}
	for o := range dr.Outcomes {
		if pr.Outcomes[o] == 0 {
			t.Errorf("verdict %q invented under DPOR", o)
		}
	}
	if (pr.Violating > 0) != (dr.Violating > 0) {
		t.Errorf("violation existence diverged: plain %d, DPOR %d", pr.Violating, dr.Violating)
	}
	if dr.Prune.DPORRaces == 0 || dr.Prune.DPORBacktracks == 0 {
		t.Errorf("DPOR job folded no engine stats: %+v", dr.Prune)
	}
	if pr.Prune.DPORRaces != 0 {
		t.Errorf("plain job reports DPOR races: %+v", pr.Prune)
	}

	var b strings.Builder
	s.Metrics().WritePrometheus(&b)
	exp := b.String()
	for _, series := range []string{
		"tsoserve_dpor_races_detected_total",
		"tsoserve_dpor_backtracks_total",
		"tsoserve_dpor_sleep_skips_total",
	} {
		if !strings.Contains(exp, series) {
			t.Errorf("metrics exposition missing %s", series)
		}
	}
	if strings.Contains(exp, "tsoserve_dpor_races_detected_total 0\n") {
		t.Error("dpor race counter never moved")
	}
}

// TestDPORJobDrainResume spools a mid-flight DPOR job and resumes it on
// a second server: the checkpoint carries the DPOR stamp, so the resumed
// engine re-enters DPOR mode (rather than silently exploring unreduced
// or refusing), and the job still completes with the plain job's verdict
// set.
func TestDPORJobDrainResume(t *testing.T) {
	spool := t.TempDir()
	cfg := Config{SpoolDir: spool, Workers: 2, SliceRuns: 16, CheckpointInterval: Duration(time.Hour)}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := mediumSpec()
	spec.DPOR = true
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, err := s.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateDone {
			t.Fatalf("job finished before the drain; shrink SliceRuns")
		}
		if cur.State == StateRunning && cur.Executed >= 64 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never got going: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain()

	rec, err := s.store.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || !rec.Checkpoint.DPOR {
		t.Fatalf("spooled checkpoint lost the DPOR stamp: %+v", rec.Checkpoint)
	}

	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	final := waitServer(t, s2, st.ID, 120*time.Second)
	if final.State != StateDone || final.Result == nil || !final.Result.Complete {
		t.Fatalf("resumed DPOR job did not complete: %+v", final)
	}
	want := directReport(t, mediumSpec())
	for o := range want.Outcomes {
		if final.Result.Outcomes[o] == 0 {
			t.Errorf("verdict %q lost across DPOR drain/resume", o)
		}
	}
	for o := range final.Result.Outcomes {
		if want.Outcomes[o] == 0 {
			t.Errorf("verdict %q invented across DPOR drain/resume", o)
		}
	}
}
