package serve

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestBenchThroughput measures end-to-end service throughput over the
// HTTP front: a batch of small exhaustive jobs submitted at once, timed
// from first POST to last terminal state. It only runs when
// BENCH_SERVE_OUT names an output file, where it writes a one-object
// JSON summary (CI uploads it as the BENCH_serve.json artifact; the
// checked-in copy under results/ is the local reference point).
func TestBenchThroughput(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVE_OUT=path to run the throughput bench")
	}
	const jobs = 16
	s, ts := newTestServer(t, Config{QueueDepth: jobs})
	defer ts.Close()
	defer s.Drain()

	start := time.Now()
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		ids = append(ids, postJob(t, ts, smallSpec()).ID)
	}
	var runs, schedules int
	for _, id := range ids {
		st := waitDone(t, func() JobStatus { return getStatus(t, ts, id) }, 120*time.Second)
		if st.State != StateDone || st.Result == nil || !st.Result.Complete {
			t.Fatalf("bench job %s did not complete: %+v", id, st)
		}
		runs += st.Result.Executed
		schedules += st.Result.Schedules
	}
	secs := time.Since(start).Seconds()

	summary := map[string]any{
		"jobs":              jobs,
		"runs_executed":     runs,
		"schedules":         schedules,
		"seconds":           secs,
		"jobs_per_sec":      float64(jobs) / secs,
		"runs_per_sec":      float64(runs) / secs,
		"schedules_per_sec": float64(schedules) / secs,
		"workers":           s.cfg.Workers,
		"slice_runs":        s.cfg.SliceRuns,
		"shard_units":       s.cfg.ShardUnits,
	}
	b, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d jobs, %d runs in %.2fs (%.1f jobs/s)", jobs, runs, secs, float64(jobs)/secs)
}
