package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/oracle"
)

// smallSpec is a quick, clean job (≈50k schedules, a few hundred
// executed with pruning).
func smallSpec() JobSpec {
	return JobSpec{Algorithm: "FF-CL", S: 2, Prefill: 1, WorkerOps: "PT", Thieves: []int{2}}
}

// mediumSpec is the mid-flight workhorse: big enough (≈166k schedules,
// thousands of executed runs at small slice sizes) that kill and drain
// reliably catch it running, small enough to finish in test time.
func mediumSpec() JobSpec {
	return JobSpec{Algorithm: "FF-CL", S: 2, Prefill: 2, WorkerOps: "PT", Thieves: []int{2}}
}

// violatingSpec is the corpus δ<S unsound configuration: FF-CL with
// δ=1 on an S=2 machine loses and duplicates tasks.
func violatingSpec() JobSpec {
	return JobSpec{Algorithm: "FF-CL", S: 2, Delta: 1, Prefill: 3, WorkerOps: "TT", Thieves: []int{2}, Spec: "precise"}
}

// directReport explores the spec's program in-process — the reference
// the service's folded counts must match byte for byte.
func directReport(t *testing.T, js JobSpec) oracle.Report {
	t.Helper()
	prog, check, err := js.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return oracle.Run(prog.Scenario(), oracle.RunOptions{
		Spec: check, Parallel: 4, Prune: true, MaxSchedules: 1 << 20,
	})
}

// newTestServer starts a server plus its HTTP front. The caller drains.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// postJob submits a spec over HTTP and returns the decoded status.
func postJob(t *testing.T, ts *httptest.Server, js JobSpec) JobStatus {
	t.Helper()
	body, _ := json.Marshal(js)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// getStatus polls one job over HTTP.
func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", id, resp.Status)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDone polls until the job reaches a terminal state.
func waitDone(t *testing.T, poll func() JobStatus, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := poll()
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", st.ID, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobLifecycle is the end-to-end acceptance path: submit over HTTP,
// poll to completion, and require the folded result byte-identical to a
// direct in-process exploration of the same program.
func TestJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, SliceRuns: 256, CheckpointInterval: Duration(10 * time.Millisecond)})
	defer s.Drain()
	defer ts.Close()

	st := postJob(t, ts, smallSpec())
	if st.ID == "" || (st.State != StateQueued && st.State != StateRunning) {
		t.Fatalf("submit status %+v", st)
	}
	st = waitDone(t, func() JobStatus { return getStatus(t, ts, st.ID) }, 60*time.Second)
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("job did not complete: %+v", st)
	}
	r := st.Result
	want := directReport(t, smallSpec())
	if !reflect.DeepEqual(r.Outcomes, want.Outcomes) {
		t.Fatalf("served outcomes %v, want %v", r.Outcomes, want.Outcomes)
	}
	gotJSON, _ := json.Marshal(r.Outcomes)
	wantJSON, _ := json.Marshal(want.Outcomes)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("served outcomes not byte-identical:\n%s\n%s", gotJSON, wantJSON)
	}
	if r.Schedules != want.Schedules || !r.Complete || r.Violating != 0 {
		t.Fatalf("served summary %+v, want schedules=%d complete", r, want.Schedules)
	}
	if r.Executed == 0 || r.Witness != nil {
		t.Fatalf("clean job summary %+v", r)
	}

	// The list endpoint carries the job; unknown IDs 404.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("job list %+v", list)
	}
	if resp, err = http.Get(ts.URL + "/v1/jobs/job-999999"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s", resp.Status)
	}
}

// TestViolationWitness: the δ<S corpus configuration must come back
// violating with a replayable witness whose choices reproduce the
// verdict — the service-side version of the corpus replay check.
func TestViolationWitness(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, SliceRuns: 256, CheckpointInterval: Duration(10 * time.Millisecond)})
	defer s.Drain()
	defer ts.Close()

	js := violatingSpec()
	st := postJob(t, ts, js)
	st = waitDone(t, func() JobStatus { return getStatus(t, ts, st.ID) }, 120*time.Second)
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("job did not complete: %+v", st)
	}
	r := st.Result
	want := directReport(t, js)
	if !reflect.DeepEqual(r.Outcomes, want.Outcomes) {
		t.Fatalf("served outcomes %v, want %v", r.Outcomes, want.Outcomes)
	}
	if r.Violating != want.Violating || r.Violating == 0 {
		t.Fatalf("violating %d, want %d (nonzero)", r.Violating, want.Violating)
	}
	if r.Witness == nil || len(r.Witness.Choices) == 0 || r.Witness.Outcome == "" {
		t.Fatalf("no witness on violating job: %+v", r)
	}
	viols, err := ReplayWitness(js, r.Witness)
	if err != nil {
		t.Fatalf("witness replay: %v", err)
	}
	if got := oracle.RenderVerdict(viols); got != r.Witness.Outcome {
		t.Fatalf("witness replays to %q, reported %q", got, r.Witness.Outcome)
	}
}

// TestKillAndResume: SIGKILL the server mid-job (spool sealed at the
// kill instant), restart on the same spool, and require the resumed job
// to land on exactly the direct exploration's counts — no schedule lost,
// none double-counted.
func TestKillAndResume(t *testing.T) {
	spool := t.TempDir()
	cfg := Config{SpoolDir: spool, Workers: 2, SliceRuns: 32, CheckpointInterval: Duration(2 * time.Millisecond)}
	s, ts := newTestServer(t, cfg)

	st := postJob(t, ts, mediumSpec())
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur := getStatus(t, ts, st.ID)
		if cur.State == StateDone {
			t.Fatalf("job finished before the kill; shrink SliceRuns")
		}
		if cur.State == StateRunning && cur.Executed >= 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never got going: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	s.Kill()
	ts.Close()

	// The sealed spool must hold a mid-flight frontier.
	rec, err := s.store.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRunning || rec.Checkpoint == nil || len(rec.Checkpoint.Units) == 0 {
		t.Fatalf("sealed spool not mid-flight: state=%s cp=%v", rec.State, rec.Checkpoint != nil)
	}

	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	if s2.Metrics().jobsResumed.Load() != 1 {
		t.Fatalf("resumed %d jobs, want 1", s2.Metrics().jobsResumed.Load())
	}
	final := waitDone(t, func() JobStatus {
		st2, err := s2.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return st2
	}, 120*time.Second)
	if final.State != StateDone || final.Result == nil || !final.Result.Complete {
		t.Fatalf("resumed job did not complete: %+v", final)
	}
	want := directReport(t, mediumSpec())
	if !reflect.DeepEqual(final.Result.Outcomes, want.Outcomes) {
		t.Fatalf("resumed outcomes %v, want %v", final.Result.Outcomes, want.Outcomes)
	}
	if final.Result.Schedules != want.Schedules {
		t.Fatalf("resumed schedules %d, want %d", final.Result.Schedules, want.Schedules)
	}
}

// TestSubmitRejections: malformed specs 400, queue overflow 429, drain
// 503 — and /healthz flips once draining.
func TestSubmitRejections(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, SliceRuns: 16, CheckpointInterval: Duration(time.Hour)})
	defer s.Drain()
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"algorithm": "ABP", "s": 2, "worker_ops": "PT", "thieves": [1]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: %d", code)
	}
	if code := post(`{"algorithm": "THE", "s": 2, "worker_opz": "PT"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", code)
	}

	// One slow job fills the QueueDepth=1 admission window.
	st := postJob(t, ts, mediumSpec())
	body, _ := json.Marshal(smallSpec())
	if code := post(string(body)); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", code)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %s", resp.Status)
	}

	go s.Drain() // drains in background while the slow job runs
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	if code := post(string(body)); code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", code)
	}
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %s", resp.Status)
	}
	_ = st
}

// TestMetricsEndpoint: the Prometheus exposition carries the engine-fed
// counters after a completed job.
func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, SliceRuns: 256, CheckpointInterval: Duration(time.Hour)})
	defer s.Drain()
	defer ts.Close()

	st := postJob(t, ts, smallSpec())
	waitDone(t, func() JobStatus { return getStatus(t, ts, st.ID) }, 60*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"tsoserve_jobs_submitted_total 1",
		"tsoserve_jobs_completed_total 1",
		"tsoserve_runs_executed_total",
		"tsoserve_schedules_accounted_total",
		"tsoserve_prune_hit_rate",
		"tsoserve_runs_per_second",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "tsoserve_runs_executed_total 0\n") {
		t.Fatal("runs counter never moved")
	}
}
