package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/tso"
)

// Record is a job's durable spool form: the submitted spec, the
// lifecycle state, the remaining schedule budget, and — while running —
// the frontier checkpoint (folded counts plus the unexplored units at
// their last slice boundary) that a restarted server resumes from.
type Record struct {
	// ID is the job identifier (also the spool file name).
	ID string `json:"id"`
	// Spec is the submitted job.
	Spec JobSpec `json:"spec"`
	// State is the lifecycle position at the last write.
	State JobState `json:"state"`
	// Budget is the remaining executed-schedule budget.
	Budget int `json:"budget"`
	// Error describes a failed job.
	Error string `json:"error,omitempty"`
	// Result is the final summary, present once State is done.
	Result *JobResult `json:"result,omitempty"`
	// Checkpoint is the resumable frontier of a queued or running job.
	// Its counts and units are crash-consistent: units are recorded at
	// slice-start positions, so re-exploring them after a crash never
	// double-counts a schedule.
	Checkpoint *tso.Checkpoint `json:"checkpoint,omitempty"`
}

// recordWire is the spool file schema. The record envelope stays JSON (it
// is small and operators grep it), while the checkpoint — the bulk of a
// running job's record — is carried either embedded (the legacy "json"
// codec) or as a base64 blob in the store's configured tso.Codec wire
// format. Reads accept both forms regardless of the configured writer
// codec, so a spool written by an older build resumes unchanged.
type recordWire struct {
	ID            string          `json:"id"`
	Spec          JobSpec         `json:"spec"`
	State         JobState        `json:"state"`
	Budget        int             `json:"budget"`
	Error         string          `json:"error,omitempty"`
	Result        *JobResult      `json:"result,omitempty"`
	Checkpoint    *tso.Checkpoint `json:"checkpoint,omitempty"`
	CheckpointBin []byte          `json:"checkpoint_bin,omitempty"`
}

// Store is the spool directory: one JSON file per job, written
// atomically (temp file + rename), so a crash never leaves a torn
// record. Seal stops all writes — the test harness's stand-in for
// SIGKILL, freezing the on-disk state at a chosen instant.
type Store struct {
	dir    string
	codec  tso.Codec
	mu     sync.Mutex
	sealed bool
	writes int
}

// OpenStore opens (creating if needed) the spool directory, writing
// checkpoints in the default (binary) codec.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreCodec(dir, "")
}

// OpenStoreCodec opens the spool with an explicit checkpoint codec name
// ("" or "binary" for the compact wire format, "json" for the legacy
// embedded form). The codec governs writes only; reads accept both.
func OpenStoreCodec(dir, codec string) (*Store, error) {
	c, err := tso.CodecByName(codec)
	if err != nil {
		return nil, fmt.Errorf("serve: opening spool: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: opening spool: %w", err)
	}
	return &Store{dir: dir, codec: c}, nil
}

// Dir returns the spool directory path.
func (s *Store) Dir() string { return s.dir }

// path is the record file for a job ID.
func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Put durably writes the record, replacing any previous version. After
// Seal it silently does nothing: a killed process writes nothing either.
func (s *Store) Put(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return nil
	}
	wire := recordWire{
		ID:     rec.ID,
		Spec:   rec.Spec,
		State:  rec.State,
		Budget: rec.Budget,
		Error:  rec.Error,
		Result: rec.Result,
	}
	if rec.Checkpoint != nil {
		if err := rec.Checkpoint.Validate(); err != nil {
			return fmt.Errorf("serve: refusing to spool job %s: %w", rec.ID, err)
		}
		if s.codec.Name() == "json" {
			wire.Checkpoint = rec.Checkpoint
		} else {
			var buf bytes.Buffer
			if err := s.codec.EncodeCheckpoint(&buf, rec.Checkpoint); err != nil {
				return fmt.Errorf("serve: encoding job %s checkpoint: %w", rec.ID, err)
			}
			wire.CheckpointBin = buf.Bytes()
		}
	}
	data, err := json.MarshalIndent(&wire, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding job %s: %w", rec.ID, err)
	}
	tmp := s.path(rec.ID) + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("serve: spooling job %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmp, s.path(rec.ID)); err != nil {
		return fmt.Errorf("serve: spooling job %s: %w", rec.ID, err)
	}
	s.writes++
	return nil
}

// Get reads one job's record from disk.
func (s *Store) Get(id string) (*Record, error) {
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, err
	}
	var wire recordWire
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("serve: decoding job %s: %w", id, err)
	}
	rec := Record{
		ID:         wire.ID,
		Spec:       wire.Spec,
		State:      wire.State,
		Budget:     wire.Budget,
		Error:      wire.Error,
		Result:     wire.Result,
		Checkpoint: wire.Checkpoint,
	}
	if len(wire.CheckpointBin) > 0 {
		if wire.Checkpoint != nil {
			return nil, fmt.Errorf("serve: job %s spooled both checkpoint forms", id)
		}
		cp, err := tso.DecodeCheckpoint(bytes.NewReader(wire.CheckpointBin))
		if err != nil {
			return nil, fmt.Errorf("serve: job %s spooled checkpoint: %w", id, err)
		}
		rec.Checkpoint = cp
	}
	if rec.Checkpoint != nil {
		if err := rec.Checkpoint.Validate(); err != nil {
			return nil, fmt.Errorf("serve: job %s spooled checkpoint: %w", id, err)
		}
	}
	return &rec, nil
}

// List reads every record in the spool, sorted by ID — the restart
// recovery scan. Torn or foreign files fail the whole scan rather than
// being skipped: a spool the server cannot fully parse needs operator
// eyes, not silent data loss.
func (s *Store) List() ([]*Record, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var recs []*Record
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		rec, err := s.Get(strings.TrimSuffix(name, ".json"))
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}

// Seal stops all subsequent writes, freezing the spool's on-disk state.
// Used by tests to simulate SIGKILL at a precise instant.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true
}

// Writes reports the number of records durably written so far (a test
// and metrics hook).
func (s *Store) Writes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}
