package serve

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/oracle"
	"repro/internal/tso"
)

// spoolRecord returns a running-state record with a realistic frontier
// checkpoint for direct Store tests.
func spoolRecord(t *testing.T) *Record {
	t.Helper()
	js := mediumSpec()
	prog, _, err := js.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sc := prog.Scenario()
	mk, _ := sc.Outcomes(oracle.Precise{})
	cp, err := tso.ShardFrontier(sc.Config, mk, tso.ExhaustiveOptions{Units: 8})
	if err != nil {
		t.Fatal(err)
	}
	return &Record{ID: "job-000042", Spec: js, State: StateRunning, Budget: 1000, Checkpoint: cp}
}

// TestStoreBinaryWire: the default store must spool checkpoints as a
// binary blob (checkpoint_bin), round-trip them exactly, and leave the
// legacy embedded-JSON field unused; the "json" codec must do the
// reverse. Either store must read what the other wrote.
func TestStoreBinaryWire(t *testing.T) {
	rec := spoolRecord(t)
	for _, tc := range []struct {
		codec    string
		wantBin  bool
		wantJSON bool
	}{
		{"", true, false},
		{"binary", true, false},
		{"json", false, true},
	} {
		dir := t.TempDir()
		st, err := OpenStoreCodec(dir, tc.codec)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(st.path(rec.ID))
		if err != nil {
			t.Fatal(err)
		}
		if got := bytes.Contains(raw, []byte(`"checkpoint_bin"`)); got != tc.wantBin {
			t.Errorf("codec %q: checkpoint_bin present=%v, want %v", tc.codec, got, tc.wantBin)
		}
		if got := bytes.Contains(raw, []byte(`"checkpoint"`)) && !bytes.Contains(raw, []byte(`"checkpoint_bin"`)); got != tc.wantJSON {
			t.Errorf("codec %q: embedded checkpoint present=%v, want %v", tc.codec, got, tc.wantJSON)
		}

		// Every store reads every wire form.
		for _, reader := range []string{"", "json"} {
			rd, err := OpenStoreCodec(dir, reader)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rd.Get(rec.ID)
			if err != nil {
				t.Fatalf("codec %q read by %q: %v", tc.codec, reader, err)
			}
			if !reflect.DeepEqual(got.Checkpoint, rec.Checkpoint) {
				t.Errorf("codec %q read by %q: checkpoint diverged", tc.codec, reader)
			}
		}
	}
	if _, err := OpenStoreCodec(t.TempDir(), "protobuf"); err == nil {
		t.Fatal("unknown spool codec accepted")
	}
}

// TestStoreRejectsAmbiguousRecord: a spool file carrying both checkpoint
// forms is operator error (or corruption) and must fail the read, not
// silently pick one.
func TestStoreRejectsAmbiguousRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("job-000001"), []byte(`{
  "id": "job-000001",
  "state": "running",
  "checkpoint": {"version": 1},
  "checkpoint_bin": "VFNPRg=="
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("job-000001"); err == nil || !strings.Contains(err.Error(), "both checkpoint forms") {
		t.Fatalf("ambiguous record: got %v, want both-forms error", err)
	}
}

// TestLegacyJSONSpoolResumesUnderBinaryDefault is the migration bar: a
// spool written entirely by a JSON-codec server (the legacy era) must
// resume under a binary-default server to the same final counts as a
// direct in-process exploration — and the resumed server's own writes
// switch the record to the binary wire.
func TestLegacyJSONSpoolResumesUnderBinaryDefault(t *testing.T) {
	spool := t.TempDir()
	legacy := Config{SpoolDir: spool, Workers: 2, SliceRuns: 32,
		CheckpointInterval: Duration(time.Hour), SpoolCodec: "json"}
	s, err := NewServer(legacy)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(mediumSpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, err := s.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateDone {
			t.Fatal("job finished before the drain; shrink SliceRuns")
		}
		if cur.State == StateRunning && cur.Executed >= 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never got going: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain()

	raw, err := os.ReadFile(s.store.path(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"checkpoint"`)) || bytes.Contains(raw, []byte(`"checkpoint_bin"`)) {
		t.Fatal("legacy server did not write an embedded-JSON checkpoint")
	}

	// Resume with the binary default.
	modern := legacy
	modern.SpoolCodec = ""
	modern.CheckpointInterval = Duration(2 * time.Millisecond)
	s2, err := NewServer(modern)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	final := waitServer(t, s2, st.ID, 120*time.Second)
	if final.State != StateDone || final.Result == nil || !final.Result.Complete {
		t.Fatalf("migrated job did not complete: %+v", final)
	}
	want := directReport(t, mediumSpec())
	if !reflect.DeepEqual(final.Result.Outcomes, want.Outcomes) {
		t.Fatalf("migrated outcomes %v, want %v", final.Result.Outcomes, want.Outcomes)
	}
	if final.Result.Schedules != want.Schedules {
		t.Fatalf("migrated schedules %d, want %d", final.Result.Schedules, want.Schedules)
	}
	raw, err = os.ReadFile(s2.store.path(st.ID))
	if err != nil {
		t.Fatal(err)
	}
	// The resumed server rewrote the record; whatever it holds now (a
	// binary checkpoint mid-flight, or none once terminal), the legacy
	// embedded-JSON form must be gone.
	if bytes.Contains(raw, []byte(`"checkpoint":`)) {
		t.Fatalf("resumed server left a legacy embedded checkpoint: %s", raw)
	}
}

// TestReorderBoundedJob: a job submitted with a reorder bound must fold
// to byte-identical counts with a direct bounded in-process exploration,
// spool the bound into its checkpoints, and report reorder skips.
func TestReorderBoundedJob(t *testing.T) {
	spool := t.TempDir()
	s, err := NewServer(Config{SpoolDir: spool, Workers: 4, SliceRuns: 256,
		CheckpointInterval: Duration(10 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()

	js := mediumSpec()
	js.MaxReorderings = 1
	st, err := s.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	final := waitServer(t, s, st.ID, 120*time.Second)
	if final.State != StateDone || final.Result == nil || !final.Result.Complete {
		t.Fatalf("bounded job did not complete: %+v", final)
	}

	prog, check, err := js.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Run(prog.Scenario(), oracle.RunOptions{
		Spec: check, Parallel: 4, Prune: true, MaxSchedules: 1 << 20, MaxReorderings: 1,
	})
	if !reflect.DeepEqual(final.Result.Outcomes, want.Outcomes) {
		t.Fatalf("bounded outcomes %v, want %v", final.Result.Outcomes, want.Outcomes)
	}
	if final.Result.Schedules != want.Schedules {
		t.Fatalf("bounded schedules %d, want %d", final.Result.Schedules, want.Schedules)
	}
	if final.Result.Prune.ReorderSkips == 0 {
		t.Fatalf("bound never bound anything: %+v", final.Result.Prune)
	}

	// The bound must also shrink the accounted space vs the unbounded job.
	full := directReport(t, mediumSpec())
	if final.Result.Schedules >= full.Schedules {
		t.Fatalf("bounded job accounted %d schedules, unbounded %d", final.Result.Schedules, full.Schedules)
	}

	// Rejection path: negative bounds are intake errors.
	bad := mediumSpec()
	bad.MaxReorderings = -1
	if _, err := s.Submit(bad); !errors.Is(err, ErrBadReorder) {
		t.Fatalf("negative bound: got %v, want ErrBadReorder", err)
	}
}

// TestMetricsMemoAndReorderGauges: the /metrics text must expose the memo
// arena and reorder-bound series, with the arena counters live after a
// pruned job.
func TestMetricsMemoAndReorderGauges(t *testing.T) {
	s, err := NewServer(Config{SpoolDir: t.TempDir(), Workers: 2, SliceRuns: 256,
		CheckpointInterval: Duration(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	js := mediumSpec()
	js.MaxReorderings = 1
	st, err := s.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	waitServer(t, s, st.ID, 120*time.Second)

	var buf bytes.Buffer
	s.Metrics().WritePrometheus(&buf)
	text := buf.String()
	for _, name := range []string{
		"tsoserve_memo_entries",
		"tsoserve_memo_admitted_total",
		"tsoserve_memo_evicted_total",
		"tsoserve_memo_stripe_contention_total",
		"tsoserve_reorder_skips_total",
	} {
		if !strings.Contains(text, "\n"+name+" ") {
			t.Errorf("metric %s missing from /metrics output", name)
		}
	}
	if strings.Contains(text, "\ntsoserve_memo_admitted_total 0\n") {
		t.Error("memo admitted counter stayed zero after a pruned job")
	}
	if strings.Contains(text, "\ntsoserve_reorder_skips_total 0\n") {
		t.Error("reorder skip counter stayed zero after a bounded job")
	}
}
