package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/oracle"
	"repro/internal/runner"
	"repro/internal/tso"
)

// Intake rejection sentinels.
var (
	// ErrQueueFull rejects a submission while QueueDepth jobs are already
	// unfinished.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects submissions after Drain began.
	ErrDraining = errors.New("serve: server draining")
	// ErrUnknownJob is returned by Status for an ID the server never
	// assigned.
	ErrUnknownJob = errors.New("serve: unknown job")
)

// Server is the verification service engine: job intake, the shard
// dispatcher over a bounded worker pool, the deterministic fold of shard
// deltas, periodic spooling, and drain/kill lifecycle. The HTTP layer
// (Handler) is a thin skin over its methods.
type Server struct {
	cfg     Config
	store   *Store
	pool    *runner.Pool
	metrics *Metrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	nextID   int
	draining bool

	stopOnce sync.Once
	stopCh   chan struct{} // closed on Drain/Kill; wired as exploration Interrupt
	tickOnce sync.Once
	tickStop chan struct{}
	tickDone chan struct{}
}

// job is the in-memory state of one verification job.
type job struct {
	id    string
	spec  JobSpec
	prog  oracle.Program
	check oracle.Spec
	cfg   tso.Config
	mk    func(*tso.Machine) []func(tso.Context)
	out   func(*tso.Machine) string

	state       JobState
	errMsg      string
	fold        *tso.Fold
	outstanding map[int]tso.UnitCheckpoint
	nextUnit    int
	budget      int // remaining executed-schedule budget (prepaid per slice)
	budgetTotal int
	executed    int
	inFlight    int // pool tasks queued or running for this job
	dirty       bool
	result      *JobResult
}

// NewServer opens the spool, resumes any jobs it holds, and starts the
// worker pool and the checkpoint ticker. The caller owns the lifecycle:
// Drain for a graceful stop, Kill only in tests.
func NewServer(cfg Config) (*Server, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	store, err := OpenStoreCodec(c.SpoolDir, c.SpoolCodec)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      c,
		store:    store,
		pool:     runner.NewPool(context.Background(), c.Workers),
		metrics:  NewMetrics(),
		jobs:     map[string]*job{},
		stopCh:   make(chan struct{}),
		tickStop: make(chan struct{}),
		tickDone: make(chan struct{}),
	}
	if err := s.resume(); err != nil {
		s.pool.Close(false)
		return nil, err
	}
	go s.ticker()
	return s, nil
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Metrics returns the server's metrics set (the /metrics source).
func (s *Server) Metrics() *Metrics { return s.metrics }

// newJob compiles a spec into runnable job state (no lock needed).
func (s *Server) newJob(id string, spec JobSpec) (*job, error) {
	prog, check, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	sc := prog.Scenario()
	mk, out := sc.Outcomes(check)
	budget := spec.MaxSchedules
	if budget == 0 || budget > s.cfg.MaxJobRuns {
		budget = s.cfg.MaxJobRuns
	}
	return &job{
		id:          id,
		spec:        spec,
		prog:        prog,
		check:       check,
		cfg:         sc.Config,
		mk:          mk,
		out:         out,
		state:       StateQueued,
		fold:        tso.NewFold(sc.Config.Threads),
		outstanding: map[int]tso.UnitCheckpoint{},
		budget:      budget,
		budgetTotal: budget,
	}, nil
}

// Submit validates and admits a job, persists its intake record, and
// queues the planning task that shards its frontier. The returned status
// snapshots the accepted job.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	j, err := s.newJob("", spec)
	if err != nil {
		s.metrics.jobsRejected.Add(1)
		return JobStatus{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.jobsRejected.Add(1)
		return JobStatus{}, ErrDraining
	}
	if s.activeLocked() >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.metrics.jobsRejected.Add(1)
		return JobStatus{}, ErrQueueFull
	}
	s.nextID++
	j.id = fmt.Sprintf("job-%06d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	rec := s.recordLocked(j)
	st := s.statusLocked(j)
	s.enqueuePlanLocked(j)
	s.mu.Unlock()

	s.put(rec)
	s.metrics.jobsSubmitted.Add(1)
	s.metrics.jobsActive.Add(1)
	return st, nil
}

// activeLocked counts unfinished jobs (mu held).
func (s *Server) activeLocked() int {
	n := 0
	for _, j := range s.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			n++
		}
	}
	return n
}

// Status returns a job's current status snapshot.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return s.statusLocked(j), nil
}

// List returns every job's status in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Draining reports whether Drain has begun (the /healthz signal).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// statusLocked snapshots a job (mu held). The result is copied because
// the witness task mutates it under mu while callers marshal the status
// outside it.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:               j.id,
		State:            j.state,
		Spec:             j.spec,
		Executed:         j.executed,
		OutstandingUnits: len(j.outstanding),
		Error:            j.errMsg,
	}
	if j.result != nil {
		r := *j.result
		st.Result = &r
	}
	return st
}

// recordLocked builds a job's durable record, including — for jobs with
// sharded frontiers — the crash-consistent checkpoint: folded counts
// plus every outstanding unit at its last slice boundary (mu held).
func (s *Server) recordLocked(j *job) *Record {
	rec := &Record{
		ID:     j.id,
		Spec:   j.spec,
		State:  j.state,
		Budget: j.budget,
		Error:  j.errMsg,
	}
	if j.result != nil {
		r := *j.result
		rec.Result = &r
	}
	if j.state == StateRunning {
		units := make([]tso.UnitCheckpoint, 0, len(j.outstanding))
		ids := make([]int, 0, len(j.outstanding))
		for id := range j.outstanding {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			units = append(units, j.outstanding[id])
		}
		cp, err := j.fold.Checkpoint(j.cfg, units)
		if err == nil {
			rec.Checkpoint = cp
		}
	}
	return rec
}

// put spools a record (outside mu) and counts the write.
func (s *Server) put(rec *Record) {
	if err := s.store.Put(rec); err == nil {
		s.metrics.checkpointWrites.Add(1)
	}
}

// enqueuePlanLocked queues the frontier-splitting task (mu held).
func (s *Server) enqueuePlanLocked(j *job) {
	id := j.id
	err := s.pool.Go(runner.Job{
		Name: id + "/plan",
		Fn:   func(ctx context.Context) (any, error) { return nil, s.plan(ctx, id) },
	}, func(o runner.Outcome) { s.taskDone(id, o) })
	if err == nil {
		j.inFlight++
	}
}

// plan shards a queued job's decision tree into work units and queues
// their first slices.
func (s *Server) plan(ctx context.Context, id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.state != StateQueued || s.draining {
		s.mu.Unlock()
		return nil
	}
	mk := j.mk
	cfg := j.cfg
	s.mu.Unlock()
	if ctx.Err() != nil {
		return nil
	}
	s.metrics.slices.Add(1)

	cp, err := tso.ShardFrontier(cfg, mk, tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxStepsPerRun: s.cfg.MaxStepsPerRun},
		Units:          s.cfg.ShardUnits,
		MaxReorderings: j.spec.MaxReorderings,
		DPOR:           j.spec.DPOR,
	})
	if err != nil {
		return err
	}

	s.mu.Lock()
	base, shards := cp.Shards()
	j.fold.AddBase(base)
	j.state = StateRunning
	for _, shard := range shards {
		uid := j.nextUnit
		j.nextUnit++
		j.outstanding[uid] = shard.Units[0]
		s.enqueueSliceLocked(j, uid)
	}
	j.dirty = true
	rec := s.recordLocked(j)
	s.mu.Unlock()
	// The first durable frontier: a kill before the first ticker write
	// must still resume without re-planning.
	s.put(rec)
	return nil
}

// enqueueSliceLocked queues the next budget slice of one unit (mu held).
func (s *Server) enqueueSliceLocked(j *job, uid int) {
	id := j.id
	err := s.pool.Go(runner.Job{
		Name: fmt.Sprintf("%s/unit-%d", id, uid),
		Fn:   func(ctx context.Context) (any, error) { return nil, s.explore(ctx, id, uid) },
	}, func(o runner.Outcome) { s.taskDone(id, o) })
	if err == nil {
		j.inFlight++
	}
}

// shardCheckpoint builds a zero-progress single-unit checkpoint for a
// slice resume; slices are deep-copied so engine and dispatcher never
// alias.
func shardCheckpoint(cfg tso.Config, model string, reorder int, dpor bool, u tso.UnitCheckpoint) *tso.Checkpoint {
	return &tso.Checkpoint{
		Version:      1,
		Threads:      cfg.Threads,
		BufferSize:   cfg.BufferSize,
		Model:        model,
		DrainBuffer:  cfg.DrainBuffer,
		Reorder:      reorder,
		DPOR:         dpor,
		Counts:       map[string]int{},
		MaxOccupancy: make([]int, cfg.Threads),
		Units: []tso.UnitCheckpoint{{
			Root:       append([]int(nil), u.Root...),
			RootFanout: append([]int(nil), u.RootFanout...),
			Prefix:     append([]int(nil), u.Prefix...),
			Fanout:     append([]int(nil), u.Fanout...),
			Done:       append([]uint64(nil), u.Done...),
		}},
	}
}

// explore runs one budget slice of one outstanding unit and folds its
// delta. The slice resumes a zero-progress checkpoint, so the engine
// returns a pure delta and the fold stays order-independent; the budget
// is prepaid and the unused remainder refunded, so concurrent slices
// never overrun the job budget.
func (s *Server) explore(ctx context.Context, id string, uid int) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.state != StateRunning || s.draining {
		s.mu.Unlock()
		return nil
	}
	unit, ok := j.outstanding[uid]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	take := s.cfg.SliceRuns
	if take > j.budget {
		take = j.budget
	}
	if take <= 0 {
		// Budget exhausted; taskDone finalizes incomplete once in-flight
		// slices settle.
		s.mu.Unlock()
		return nil
	}
	j.budget -= take
	cp := shardCheckpoint(j.cfg, j.cfg.Model.String(), j.spec.MaxReorderings, j.spec.DPOR, unit)
	mk, out, cfg := j.mk, j.out, j.cfg
	prune := !j.spec.NoPrune && !j.spec.DPOR
	reorder := j.spec.MaxReorderings
	dpor := j.spec.DPOR
	s.mu.Unlock()
	if ctx.Err() != nil {
		s.mu.Lock()
		j.budget += take
		s.mu.Unlock()
		return nil
	}
	s.metrics.slices.Add(1)

	set, res := tso.ExploreExhaustive(cfg, mk, out, tso.ExhaustiveOptions{
		ExploreOptions: tso.ExploreOptions{MaxRuns: take, MaxStepsPerRun: s.cfg.MaxStepsPerRun},
		Prune:          prune,
		MaxReorderings: reorder,
		DPOR:           dpor,
		Resume:         cp,
		Interrupt:      s.stopCh,
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	j.fold.Add(set, res)
	j.budget += take - res.Runs
	j.executed += res.Runs
	j.dirty = true
	s.foldMetrics(set, res)
	if res.Complete {
		delete(j.outstanding, uid)
	} else if res.Checkpoint != nil {
		// The engine may split an interrupted unit; the first remainder
		// keeps this unit's ID, extras become new units.
		_, rest := res.Checkpoint.Shards()
		if len(rest) == 0 {
			delete(j.outstanding, uid)
		}
		for i, r := range rest {
			nid := uid
			if i > 0 {
				nid = j.nextUnit
				j.nextUnit++
			}
			j.outstanding[nid] = r.Units[0]
			if i > 0 && !s.draining && j.budget > 0 {
				s.enqueueSliceLocked(j, nid)
			}
		}
	}
	if _, still := j.outstanding[uid]; still && !s.draining && j.budget > 0 {
		s.enqueueSliceLocked(j, uid)
	}
	return nil
}

// foldMetrics accumulates one slice's engine statistics (mu held, cheap
// atomics).
func (s *Server) foldMetrics(set tso.OutcomeSet, res tso.ExploreResult) {
	s.metrics.runsExecuted.Add(int64(res.Runs))
	s.metrics.schedulesAccounted.Add(int64(set.Total()))
	s.metrics.stepLimited.Add(int64(res.StepLimited))
	s.metrics.choicePoints.Add(res.Tree.ChoicePoints)
	s.metrics.pruneSeen.Add(res.Prune.StatesSeen)
	s.metrics.pruneDeduped.Add(res.Prune.StatesDeduped)
	s.metrics.schedulesSaved.Add(res.Prune.SchedulesSaved)
	s.metrics.reorderSkips.Add(res.Prune.ReorderSkips)
	s.metrics.dporRaces.Add(res.Prune.DPORRaces)
	s.metrics.dporBacktracks.Add(res.Prune.DPORBacktracks)
	s.metrics.dporSleepSkips.Add(res.Prune.DPORSleepSkips)
	s.metrics.memoAdmitted.Add(res.Memo.Admitted)
	s.metrics.memoEvicted.Add(res.Memo.Evicted)
	s.metrics.memoContended.Add(res.Memo.Contended)
	if res.Memo.Entries > 0 {
		s.metrics.memoEntries.Store(int64(res.Memo.Entries))
	}
	for o, n := range set.Counts {
		if o != "ok" && o != "<step-limit>" {
			s.metrics.violations.Add(int64(n))
		}
	}
}

// taskDone is every pool task's completion callback: it settles in-flight
// accounting, converts a panicking task into a failed job, and finalizes
// the job once nothing is left to run.
func (s *Server) taskDone(id string, o runner.Outcome) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	j.inFlight--
	var rec *Record
	var pe *runner.PanicError
	failed := errors.As(o.Err, &pe) || (o.Err != nil && !errors.Is(o.Err, context.Canceled))
	switch {
	case failed && j.state != StateDone && j.state != StateFailed:
		j.state = StateFailed
		j.errMsg = o.Err.Error()
		rec = s.recordLocked(j)
		s.metrics.jobsFailed.Add(1)
		s.metrics.jobsActive.Add(-1)
	case j.state == StateRunning && j.inFlight == 0 && !s.draining &&
		(len(j.outstanding) == 0 || j.budget <= 0):
		rec = s.finalizeLocked(j)
	case j.state == StateRunning && j.inFlight == 0 && !s.draining:
		// Budget came back (a concurrent slice refunded its prepayment
		// after this unit's slice saw none) but the outstanding units
		// have no queued tasks — revive them or the job stalls.
		for uid := range j.outstanding {
			s.enqueueSliceLocked(j, uid)
		}
	}
	s.mu.Unlock()
	if rec != nil {
		s.put(rec)
	}
}

// finalizeLocked seals a job's result from its fold and, for violating
// jobs, queues the witness search (mu held). Returns the record to spool
// when the job reached its terminal state here, nil when the witness
// task will finish it.
func (s *Server) finalizeLocked(j *job) *Record {
	complete := len(j.outstanding) == 0
	set, res := j.fold.Result(complete)
	result := &JobResult{
		Outcomes:     set.Counts,
		Schedules:    set.Total(),
		Executed:     res.Runs,
		StepLimited:  res.StepLimited,
		Complete:     complete,
		MaxOccupancy: set.MaxOccupancy,
		Tree:         res.Tree,
		Prune:        res.Prune,
		Memo:         res.Memo,
	}
	for o, n := range set.Counts {
		if o != "ok" && o != "<step-limit>" {
			result.Violating += n
		}
	}
	j.result = result
	if result.Violating > 0 {
		if s.enqueueWitnessLocked(j) {
			return nil // the witness task completes the job
		}
	}
	j.state = StateDone
	s.metrics.jobsCompleted.Add(1)
	s.metrics.jobsActive.Add(-1)
	return s.recordLocked(j)
}

// enqueueWitnessLocked queues the sequential counterexample search for a
// violating job (mu held). Reports whether the task was accepted.
func (s *Server) enqueueWitnessLocked(j *job) bool {
	id := j.id
	err := s.pool.Go(runner.Job{
		Name: id + "/witness",
		Fn:   func(ctx context.Context) (any, error) { return nil, s.witness(ctx, id) },
	}, func(o runner.Outcome) { s.witnessDone(id, o) })
	if err == nil {
		j.inFlight++
	}
	return err == nil
}

// witness re-explores the job's program sequentially for the first
// violating schedule and attaches it replayably.
func (s *Server) witness(ctx context.Context, id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.result == nil {
		s.mu.Unlock()
		return nil
	}
	prog, check, budget := j.prog, j.check, j.budgetTotal
	s.mu.Unlock()
	if ctx.Err() != nil {
		return nil
	}
	ce := oracle.FindCounterexample(prog.Scenario(), check, oracle.RunOptions{
		MaxSchedules:   budget,
		MaxStepsPerRun: s.cfg.MaxStepsPerRun,
	})
	s.mu.Lock()
	if ce != nil && j.result != nil {
		j.result.Witness = &Witness{Outcome: ce.Outcome, Choices: ce.Choices, Trace: ce.Trace}
	}
	s.mu.Unlock()
	return nil
}

// witnessDone completes a job after its witness search.
func (s *Server) witnessDone(id string, o runner.Outcome) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	j.inFlight--
	var rec *Record
	if j.state == StateRunning {
		j.state = StateDone
		s.metrics.jobsCompleted.Add(1)
		s.metrics.jobsActive.Add(-1)
		rec = s.recordLocked(j)
	}
	s.mu.Unlock()
	if rec != nil {
		s.put(rec)
	}
}

// ticker periodically spools every dirty running job's frontier.
func (s *Server) ticker() {
	defer close(s.tickDone)
	t := time.NewTicker(time.Duration(s.cfg.CheckpointInterval))
	defer t.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-t.C:
			s.checkpointDirty()
		}
	}
}

// checkpointDirty spools every running job whose state moved since its
// last write.
func (s *Server) checkpointDirty() {
	s.mu.Lock()
	var recs []*Record
	for _, j := range s.jobs {
		if j.dirty && (j.state == StateRunning || j.state == StateQueued) {
			recs = append(recs, s.recordLocked(j))
			j.dirty = false
		}
	}
	s.mu.Unlock()
	for _, rec := range recs {
		s.put(rec)
	}
}

// resume reloads the spool at startup: terminal jobs become queryable
// history, unfinished ones are re-admitted — from their checkpoint when
// one was spooled (no schedule is re-counted: the checkpoint's units
// stand at slice boundaries), from scratch otherwise.
func (s *Server) resume() error {
	recs, err := s.store.List()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		var n int
		if _, err := fmt.Sscanf(rec.ID, "job-%06d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
		if rec.State == StateDone || rec.State == StateFailed {
			j := &job{id: rec.ID, spec: rec.Spec, state: rec.State, errMsg: rec.Error, result: rec.Result}
			if rec.Result != nil {
				j.executed = rec.Result.Executed
			}
			s.jobs[rec.ID] = j
			s.order = append(s.order, rec.ID)
			continue
		}
		j, err := s.newJob(rec.ID, rec.Spec)
		if err != nil {
			return fmt.Errorf("serve: resuming %s: %w", rec.ID, err)
		}
		j.budget = rec.Budget
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
		s.metrics.jobsResumed.Add(1)
		s.metrics.jobsActive.Add(1)
		if rec.Checkpoint == nil {
			s.enqueuePlanLocked(j)
			continue
		}
		if err := rec.Checkpoint.CompatibleWithOptions(j.cfg, tso.ExhaustiveOptions{
			MaxReorderings: j.spec.MaxReorderings,
			DPOR:           j.spec.DPOR,
		}); err != nil {
			return fmt.Errorf("serve: resuming %s: %w", rec.ID, err)
		}
		base, shards := rec.Checkpoint.Shards()
		j.fold.AddBase(base)
		j.executed = base.Runs
		j.state = StateRunning
		for _, shard := range shards {
			uid := j.nextUnit
			j.nextUnit++
			j.outstanding[uid] = shard.Units[0]
			s.enqueueSliceLocked(j, uid)
		}
		if len(shards) == 0 && j.inFlight == 0 {
			// Everything was folded before the shutdown; finish the job.
			rec2 := s.finalizeLocked(j)
			if rec2 != nil {
				go s.put(rec2)
			}
		}
	}
	return nil
}

// Drain gracefully stops the server: intake closes, in-flight slices
// stop at their next run boundary (the same mechanism a run budget
// uses), the pool drains, and every unfinished job's frontier is spooled
// so a restart resumes it. Safe to call once; the HTTP layer keeps
// answering reads during and after.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.tickOnce.Do(func() { close(s.tickStop) })
	<-s.tickDone
	s.pool.Close(true)
	s.mu.Lock()
	var recs []*Record
	for _, j := range s.jobs {
		if j.state == StateRunning || j.state == StateQueued {
			recs = append(recs, s.recordLocked(j))
			j.dirty = false
		}
	}
	s.mu.Unlock()
	for _, rec := range recs {
		s.put(rec)
	}
}

// Kill hard-stops the server without spooling anything beyond what the
// ticker already wrote — the test harness's SIGKILL: the store is sealed
// first, so the on-disk state is exactly what a real kill would leave.
func (s *Server) Kill() {
	s.store.Seal()
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.tickOnce.Do(func() { close(s.tickStop) })
	<-s.tickDone
	s.pool.Close(false)
}
