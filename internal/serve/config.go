// Package serve is the always-on verification service: an HTTP daemon
// that accepts deque workloads (oracle programs) as jobs, model-checks
// them by sharding each job's schedule frontier across a bounded worker
// pool, and folds the shard deltas with the engine's deterministic merge
// — so a job's outcome counts are byte-identical to a direct in-process
// tso.Explore/oracle.Run of the same program. Progress is checkpointed
// periodically to a spool directory in the frontier wire format
// (tso.Checkpoint), so a killed or drained server resumes its jobs on
// restart and still lands on the same final counts.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/tso"
)

// Configuration error taxonomy. Each sentinel names one rejected field so
// callers classify failures with errors.Is; the wrapped message carries
// the offending value.
var (
	// ErrBadWorkers rejects a negative worker count (zero selects
	// GOMAXPROCS).
	ErrBadWorkers = errors.New("serve: workers must be >= 0")
	// ErrBadQueueDepth rejects a negative admission bound (zero selects
	// the default).
	ErrBadQueueDepth = errors.New("serve: queue depth must be >= 0")
	// ErrBadShardUnits rejects a negative shard target (zero selects the
	// default).
	ErrBadShardUnits = errors.New("serve: shard units must be >= 0")
	// ErrBadSliceRuns rejects a negative slice budget (zero selects the
	// default).
	ErrBadSliceRuns = errors.New("serve: slice runs must be >= 0")
	// ErrBadJobRuns rejects a negative default job budget (zero selects
	// the default).
	ErrBadJobRuns = errors.New("serve: max job runs must be >= 0")
	// ErrBadStepLimit rejects a negative per-run step bound (zero selects
	// the default).
	ErrBadStepLimit = errors.New("serve: max steps per run must be >= 0")
	// ErrBadInterval rejects a negative checkpoint interval (zero selects
	// the default).
	ErrBadInterval = errors.New("serve: checkpoint interval must be >= 0")
	// ErrBadSpoolDir rejects a spool path that exists but is not a
	// directory.
	ErrBadSpoolDir = errors.New("serve: spool path is not a directory")
	// ErrBadSpoolCodec rejects an unknown checkpoint codec name.
	ErrBadSpoolCodec = errors.New("serve: unknown spool codec")
)

// Duration is a time.Duration that marshals to and from JSON as a Go
// duration string ("5s", "1m30s"), so config files stay readable.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a bare number of
// nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("serve: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// Config is the service configuration. The zero value is valid: every
// field has a working default (see withDefaults), so `tsoserve` runs
// with no config file at all.
type Config struct {
	// ListenAddr is the HTTP listen address (default ":8321").
	ListenAddr string `json:"listen_addr,omitempty"`
	// SpoolDir is where job records and frontier checkpoints persist
	// (default "tsoserve-spool", created on open).
	SpoolDir string `json:"spool_dir,omitempty"`
	// Workers sizes the exploration pool (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// QueueDepth bounds the unfinished jobs admitted at once; further
	// submissions are rejected with 429 (default 64). Admission is
	// bounded here, at intake, because the internal shard queue must stay
	// unbounded (completions re-enqueue follow-up slices).
	QueueDepth int `json:"queue_depth,omitempty"`
	// ShardUnits is the target number of frontier work units each job is
	// split into (default 4× workers).
	ShardUnits int `json:"shard_units,omitempty"`
	// SliceRuns is the schedule budget of one pool task; smaller slices
	// checkpoint and interleave jobs more finely, larger ones amortize
	// dispatch (default 4096).
	SliceRuns int `json:"slice_runs,omitempty"`
	// MaxJobRuns caps any job's executed-schedule budget and is the
	// default for jobs that do not set one (default 1<<20).
	MaxJobRuns int `json:"max_job_runs,omitempty"`
	// MaxStepsPerRun bounds each schedule; step-limited runs are bucketed
	// under "<step-limit>" (default 100000).
	MaxStepsPerRun int64 `json:"max_steps_per_run,omitempty"`
	// CheckpointInterval is how often running jobs' frontiers are spooled
	// (default 5s).
	CheckpointInterval Duration `json:"checkpoint_interval,omitempty"`
	// SpoolCodec names the checkpoint encoding for spooled frontiers:
	// "binary" (default; the compact tso.BinaryCodec wire format) or
	// "json" (the legacy embedded-JSON form). Reads always accept both,
	// so switching codecs never strands a spool.
	SpoolCodec string `json:"spool_codec,omitempty"`
}

// DefaultConfig returns the configuration `tsoserve` runs with when no
// file is given — the zero Config with its defaults applied.
func DefaultConfig() Config {
	c, err := Config{}.withDefaults()
	if err != nil {
		panic(err) // the zero config always validates
	}
	return c
}

// Validate checks the configuration without applying defaults and
// returns the first violation, classified by the package's error
// taxonomy. The zero value of every field is valid (it selects the
// default); only explicitly out-of-range values are rejected.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("%w: got %d", ErrBadWorkers, c.Workers)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("%w: got %d", ErrBadQueueDepth, c.QueueDepth)
	}
	if c.ShardUnits < 0 {
		return fmt.Errorf("%w: got %d", ErrBadShardUnits, c.ShardUnits)
	}
	if c.SliceRuns < 0 {
		return fmt.Errorf("%w: got %d", ErrBadSliceRuns, c.SliceRuns)
	}
	if c.MaxJobRuns < 0 {
		return fmt.Errorf("%w: got %d", ErrBadJobRuns, c.MaxJobRuns)
	}
	if c.MaxStepsPerRun < 0 {
		return fmt.Errorf("%w: got %d", ErrBadStepLimit, c.MaxStepsPerRun)
	}
	if c.CheckpointInterval < 0 {
		return fmt.Errorf("%w: got %s", ErrBadInterval, time.Duration(c.CheckpointInterval))
	}
	if c.SpoolDir != "" {
		if fi, err := os.Stat(c.SpoolDir); err == nil && !fi.IsDir() {
			return fmt.Errorf("%w: %s", ErrBadSpoolDir, c.SpoolDir)
		}
	}
	if _, err := tso.CodecByName(c.SpoolCodec); err != nil {
		return fmt.Errorf("%w: %q", ErrBadSpoolCodec, c.SpoolCodec)
	}
	return nil
}

// withDefaults validates the configuration and fills the zero fields.
func (c Config) withDefaults() (Config, error) {
	if err := c.Validate(); err != nil {
		return c, err
	}
	if c.ListenAddr == "" {
		c.ListenAddr = ":8321"
	}
	if c.SpoolDir == "" {
		c.SpoolDir = "tsoserve-spool"
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.ShardUnits == 0 {
		c.ShardUnits = 4 * c.Workers
	}
	if c.SliceRuns == 0 {
		c.SliceRuns = 4096
	}
	if c.MaxJobRuns == 0 {
		c.MaxJobRuns = 1 << 20
	}
	if c.MaxStepsPerRun == 0 {
		c.MaxStepsPerRun = 100_000
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = Duration(5 * time.Second)
	}
	if c.SpoolCodec == "" {
		c.SpoolCodec = tso.DefaultCodec.Name()
	}
	return c, nil
}

// LoadConfig reads a JSON config file strictly: unknown fields are
// errors (they are invariably typos), and the decoded configuration must
// validate.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("serve: config %s: %w", path, err)
	}
	// A second document in the file is as much a mistake as an unknown
	// field.
	if dec.More() {
		return Config{}, fmt.Errorf("serve: config %s: trailing data", path)
	}
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("serve: config %s: %w", path, err)
	}
	return c, nil
}

// String renders the effective (defaulted) configuration as indented
// JSON — the `tsoserve -print-config` output.
func (c Config) String() string {
	eff, err := c.withDefaults()
	if err != nil {
		return fmt.Sprintf("invalid config: %v", err)
	}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(eff); err != nil {
		return err.Error()
	}
	return strings.TrimSuffix(b.String(), "\n")
}
