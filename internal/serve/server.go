package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/oracle"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs      submit a JobSpec; 202 with the queued status
//	GET  /v1/jobs      list every job's status, submission order
//	GET  /v1/jobs/{id} one job's status (result + witness once done)
//	GET  /healthz      200 "ok", 503 "draining" during shutdown
//	GET  /metrics      Prometheus text exposition
//
// Reads keep working during and after Drain, so an orchestrator can poll
// results while the process shuts down.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// apiError is the JSON error body.
type apiError struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// submitStatus maps a Submit error to its HTTP status: validation
// failures are the client's (400), capacity and lifecycle rejections are
// the server's (429, 503).
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// handleSubmit decodes and admits a job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		s.metrics.jobsRejected.Add(1)
		writeJSON(w, http.StatusBadRequest, apiError{Error: "decoding job spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeJSON(w, submitStatus(err), apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleList renders every job's status.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

// handleGet renders one job's status.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing new submissions to it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

// ReplayWitness re-executes a job result's witness against its spec and
// returns the violations it reproduces — the server-side form of the
// corpus replay check, exported for clients embedding the package.
func ReplayWitness(spec JobSpec, wit *Witness) ([]oracle.Violation, error) {
	prog, check, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	viols, _, err := oracle.Replay(prog.Scenario(), check, wit.Choices)
	return viols, err
}
