package serve

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// waitServer polls a server-side job to a terminal state.
func waitServer(t *testing.T, s *Server, id string, timeout time.Duration) JobStatus {
	t.Helper()
	return waitDone(t, func() JobStatus {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}, timeout)
}

// TestDrainSpoolsAndResumes: SIGTERM's path. Drain interrupts in-flight
// slices at a run boundary, spools every unfinished frontier itself (the
// ticker is parked at an hour to prove it), and a second server resumes
// to exactly the direct counts.
func TestDrainSpoolsAndResumes(t *testing.T) {
	spool := t.TempDir()
	cfg := Config{SpoolDir: spool, Workers: 2, SliceRuns: 32, CheckpointInterval: Duration(time.Hour)}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(mediumSpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, err := s.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == StateDone {
			t.Fatalf("job finished before the drain; shrink SliceRuns")
		}
		if cur.State == StateRunning && cur.Executed >= 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never got going: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain()
	if _, err := s.Submit(smallSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v", err)
	}

	rec, err := s.store.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRunning || rec.Checkpoint == nil || len(rec.Checkpoint.Units) == 0 {
		t.Fatalf("drain did not spool a mid-flight frontier: state=%s", rec.State)
	}

	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	final := waitServer(t, s2, st.ID, 120*time.Second)
	if final.State != StateDone || final.Result == nil || !final.Result.Complete {
		t.Fatalf("resumed job did not complete: %+v", final)
	}
	want := directReport(t, mediumSpec())
	if !reflect.DeepEqual(final.Result.Outcomes, want.Outcomes) {
		t.Fatalf("resumed outcomes %v, want %v", final.Result.Outcomes, want.Outcomes)
	}
	if final.Result.Schedules != want.Schedules {
		t.Fatalf("resumed schedules %d, want %d", final.Result.Schedules, want.Schedules)
	}
}

// TestBudgetExhaustion: a job whose MaxSchedules is far below its tree
// size finishes incomplete without overrunning the budget.
func TestBudgetExhaustion(t *testing.T) {
	s, err := NewServer(Config{SpoolDir: t.TempDir(), Workers: 2, SliceRuns: 64, CheckpointInterval: Duration(time.Hour)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain()
	js := mediumSpec()
	js.MaxSchedules = 200
	js.NoPrune = true // keep memo credits from covering the tree within budget
	st, err := s.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	final := waitServer(t, s, st.ID, 60*time.Second)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("budgeted job did not finish: %+v", final)
	}
	if final.Result.Complete {
		t.Fatal("budgeted job claims complete coverage")
	}
	if final.Result.Executed == 0 || final.Result.Executed > 200 {
		t.Fatalf("executed %d runs on a budget of 200", final.Result.Executed)
	}
}

// TestResumeTwice: killing the resumed server again still converges —
// the crash-consistency argument is inductive, not one-shot.
func TestResumeTwice(t *testing.T) {
	spool := t.TempDir()
	cfg := Config{SpoolDir: spool, Workers: 2, SliceRuns: 32, CheckpointInterval: Duration(2 * time.Millisecond)}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(mediumSpec())
	if err != nil {
		t.Fatal(err)
	}
	kill := func(srv *Server, threshold int) bool {
		deadline := time.Now().Add(60 * time.Second)
		for {
			cur, err := srv.Status(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if cur.State == StateDone {
				return false // finished before the kill; fine for leg 2
			}
			if cur.State == StateRunning && cur.Executed >= threshold {
				srv.Kill()
				return true
			}
			if time.Now().After(deadline) {
				t.Fatalf("job stuck: %+v", cur)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if !kill(s, 200) {
		t.Fatal("job finished before the first kill; shrink SliceRuns")
	}
	s2, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kill(s2, 600) {
		s3, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s2 = s3
	}
	defer s2.Drain()
	final := waitServer(t, s2, st.ID, 120*time.Second)
	if final.State != StateDone || final.Result == nil || !final.Result.Complete {
		t.Fatalf("twice-resumed job did not complete: %+v", final)
	}
	want := directReport(t, mediumSpec())
	if !reflect.DeepEqual(final.Result.Outcomes, want.Outcomes) {
		t.Fatalf("twice-resumed outcomes %v, want %v", final.Result.Outcomes, want.Outcomes)
	}
}
