package serve

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/tso"
)

// Job intake error taxonomy (the oracle.Program taxonomy covers the
// workload fields; these cover the service-level envelope).
var (
	// ErrBadModel rejects a memory model other than TSO — the frontier
	// wire format is model-tagged, but the service checks deque programs,
	// which are defined on the TSO machine.
	ErrBadModel = errors.New("serve: unsupported memory model")
	// ErrBadSpec rejects an unknown specification name.
	ErrBadSpec = errors.New("serve: unknown spec")
	// ErrBadBudget rejects a negative schedule budget.
	ErrBadBudget = errors.New("serve: max schedules must be >= 0")
	// ErrBadReorder rejects a negative reorder bound.
	ErrBadReorder = errors.New("serve: max reorderings must be >= 0")
	// ErrBadDPOR rejects a DPOR job that also sets a reorder bound: the
	// bound is not closed under the commuting swaps DPOR prunes by, so
	// the combination could drop reachable verdicts.
	ErrBadDPOR = errors.New("serve: dpor cannot combine with max reorderings")
)

// JobState is a job's position in its lifecycle.
type JobState string

// The job lifecycle: accepted but not yet planned, exploring, finished
// with a result, or failed with an error.
const (
	// StateQueued is a job accepted but not yet planned.
	StateQueued JobState = "queued"
	// StateRunning is a job whose frontier is being explored.
	StateRunning JobState = "running"
	// StateDone is a job with a final result.
	StateDone JobState = "done"
	// StateFailed is a job that errored (bad program behavior, panic).
	StateFailed JobState = "failed"
)

// JobSpec is the wire form of a verification job: an oracle program
// (deque workload) plus the contract to check and a schedule budget.
// It deliberately mirrors oracle.Program field for field so corpus
// entries translate one to one.
type JobSpec struct {
	// Algorithm names the queue implementation (core.ParseAlgo spelling:
	// "FF-CL", "the", "idempotent lifo", …).
	Algorithm string `json:"algorithm"`
	// Model is the memory model; empty or "TSO" (the only supported one,
	// matching tso.Checkpoint's model tag).
	Model string `json:"model,omitempty"`
	// S is the machine's store-buffer size.
	S int `json:"s"`
	// Stage enables the §7.3 post-retirement drain stage (bound S+1).
	Stage bool `json:"stage,omitempty"`
	// Delta is the δ parameter for the fence-free variants; zero selects
	// the machine's observable bound (the paper's sound choice).
	Delta int `json:"delta,omitempty"`
	// Capacity is the queue capacity (zero: oracle default).
	Capacity int `json:"capacity,omitempty"`
	// Prefill installs tasks 1..Prefill before the run.
	Prefill int `json:"prefill"`
	// WorkerOps is the owner's script: 'P' puts the next task, 'T' takes.
	WorkerOps string `json:"worker_ops"`
	// Thieves holds one steal-attempt budget per thief thread.
	Thieves []int `json:"thieves"`
	// Drain makes the worker end with a take-until-Empty loop, arming the
	// specs' loss detection.
	Drain bool `json:"drain,omitempty"`
	// Spec names the contract to check ("precise", "idempotent"); empty
	// selects the algorithm's own spec.
	Spec string `json:"spec,omitempty"`
	// MaxSchedules is the job's executed-schedule budget; zero selects
	// the server's default, and the server's MaxJobRuns caps it either
	// way.
	MaxSchedules int `json:"max_schedules,omitempty"`
	// NoPrune disables the count-preserving canonical-state memoization
	// for this job (diagnostics; the counts do not change).
	NoPrune bool `json:"no_prune,omitempty"`
	// MaxReorderings, when >= 1, bounds the store→load reorderings of
	// each explored schedule (tso.ExhaustiveOptions.MaxReorderings);
	// zero explores the full TSO[S] schedule space. The bound is stamped
	// into spooled checkpoints, so a restarted server resumes the job
	// under the same bound or refuses loudly.
	MaxReorderings int `json:"max_reorderings,omitempty"`
	// DPOR runs the job under source-set dynamic partial-order reduction
	// (tso.ExhaustiveOptions.DPOR): one executed schedule per
	// Mazurkiewicz class. The verdict set, Complete, and the existence
	// of violations are preserved; per-verdict Outcomes tallies collapse
	// to class representatives, so they are not comparable to an
	// unreduced job's. Mutually exclusive with MaxReorderings
	// (ErrBadDPOR); NoPrune is implied — memoization is superseded. The
	// mode is stamped into spooled checkpoints, so a restarted server
	// resumes the job under the same mode or refuses loudly. Slice
	// resumes re-derive backtracking conservatively, so a heavily sliced
	// DPOR job keeps soundness but sheds part of the reduction.
	DPOR bool `json:"dpor,omitempty"`
}

// Compile validates the spec and lowers it to the oracle types: the
// program (with δ defaulted to the machine's observable bound when
// omitted) and the specification to check. Errors classify under the
// serve and oracle taxonomies.
func (js JobSpec) Compile() (oracle.Program, oracle.Spec, error) {
	algo, ok := core.ParseAlgo(js.Algorithm)
	if !ok {
		return oracle.Program{}, nil, fmt.Errorf("%w: %q", oracle.ErrBadAlgo, js.Algorithm)
	}
	if js.Model != "" && !strings.EqualFold(js.Model, tso.ModelTSO.String()) {
		return oracle.Program{}, nil, fmt.Errorf("%w: %q", ErrBadModel, js.Model)
	}
	if js.MaxSchedules < 0 {
		return oracle.Program{}, nil, fmt.Errorf("%w: got %d", ErrBadBudget, js.MaxSchedules)
	}
	if js.MaxReorderings < 0 {
		return oracle.Program{}, nil, fmt.Errorf("%w: got %d", ErrBadReorder, js.MaxReorderings)
	}
	if js.DPOR && js.MaxReorderings > 0 {
		return oracle.Program{}, nil, fmt.Errorf("%w: got max_reorderings %d", ErrBadDPOR, js.MaxReorderings)
	}
	p := oracle.Program{
		Algo:      algo,
		S:         js.S,
		Stage:     js.Stage,
		Delta:     js.Delta,
		Capacity:  js.Capacity,
		Prefill:   js.Prefill,
		WorkerOps: js.WorkerOps,
		Thieves:   js.Thieves,
		Drain:     js.Drain,
	}
	if p.Delta == 0 && algo.UsesDelta() && p.S >= 1 {
		p.Delta = p.Config().ObservableBound()
	}
	if err := p.Validate(); err != nil {
		return oracle.Program{}, nil, err
	}
	spec := p.Spec()
	if js.Spec != "" {
		s, ok := oracle.SpecByName(js.Spec)
		if !ok {
			return oracle.Program{}, nil, fmt.Errorf("%w: %q", ErrBadSpec, js.Spec)
		}
		spec = s
	}
	return p, spec, nil
}

// Witness is a replayable counterexample attached to a violating job:
// the verdict, the schedule's decision choices (tso.ReplaySchedule
// format, the same one corpus entries store), and a machine-level trace
// window.
type Witness struct {
	// Outcome is the canonical verdict string the schedule produced.
	Outcome string `json:"outcome"`
	// Choices is the violating schedule's decision prefix, replayable
	// with oracle.Replay.
	Choices []int `json:"choices"`
	// Trace is the machine-level event window of the violating run.
	Trace []string `json:"trace,omitempty"`
}

// JobResult is a finished job's folded exploration summary. Outcome
// counts are byte-identical to a direct in-process exploration of the
// same program — sharding, slicing, and resuming never move a count.
type JobResult struct {
	// Outcomes tallies schedules by canonical verdict ("ok", "lost t2",
	// "<step-limit>", …).
	Outcomes map[string]int `json:"outcomes"`
	// Schedules is the number of schedules accounted for (with pruning,
	// more than were executed).
	Schedules int `json:"schedules"`
	// Executed is the number of schedules actually run on a machine.
	Executed int `json:"executed"`
	// StepLimited counts schedules that hit the per-run step bound.
	StepLimited int `json:"step_limited,omitempty"`
	// Complete reports whether the whole decision tree was covered; false
	// means the budget ran out first.
	Complete bool `json:"complete"`
	// Violating is the number of accounted schedules whose verdict was a
	// violation (neither "ok" nor "<step-limit>").
	Violating int `json:"violating"`
	// MaxOccupancy is the per-thread store-buffer high-water mark over
	// every explored schedule — the observed reordering-bound witness.
	MaxOccupancy []int `json:"max_occupancy"`
	// Tree reports the explored decision tree's shape.
	Tree tso.TreeStats `json:"tree"`
	// Prune reports the memoization savings.
	Prune tso.PruneStats `json:"prune"`
	// Memo reports the striped memo arena's saturation and contention,
	// summed across the job's slices.
	Memo tso.MemoStats `json:"memo"`
	// Witness is a replayable violating schedule, when one was found
	// within the budget; nil for clean jobs.
	Witness *Witness `json:"witness,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// State is the lifecycle position.
	State JobState `json:"state"`
	// Spec echoes the submitted job.
	Spec JobSpec `json:"spec"`
	// Executed is the running count of schedules executed so far.
	Executed int `json:"executed"`
	// OutstandingUnits is the number of frontier work units not yet
	// fully explored (zero once done).
	OutstandingUnits int `json:"outstanding_units,omitempty"`
	// Error describes a failed job.
	Error string `json:"error,omitempty"`
	// Result is the final summary, present once State is done.
	Result *JobResult `json:"result,omitempty"`
}
