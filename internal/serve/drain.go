package serve

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalDrain returns a context cancelled on SIGTERM or SIGINT — the
// shutdown trigger shared by tsoserve (graceful HTTP drain) and
// tsoexplore (final checkpoint write). A second signal restores the
// default handler, so a stuck drain can still be killed by hand.
func SignalDrain(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		select {
		case <-ch:
			signal.Stop(ch)
			cancel()
		case <-ctx.Done():
			signal.Stop(ch)
		}
	}()
	return ctx, cancel
}
