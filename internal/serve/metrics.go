package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics is the service's Prometheus-style counter set. All fields are
// monotonic counters except where noted; WritePrometheus renders them in
// the text exposition format. Exploration counters are sourced from the
// engine's own statistics (ExploreResult, TreeStats, PruneStats) as
// slices fold, so they agree exactly with job results.
type Metrics struct {
	start time.Time

	// jobsSubmitted counts accepted submissions.
	jobsSubmitted atomic.Int64
	// jobsRejected counts submissions refused at intake (validation,
	// queue full, draining).
	jobsRejected atomic.Int64
	// jobsCompleted counts jobs that reached the done state.
	jobsCompleted atomic.Int64
	// jobsFailed counts jobs that reached the failed state.
	jobsFailed atomic.Int64
	// jobsResumed counts jobs recovered from the spool at startup.
	jobsResumed atomic.Int64
	// jobsActive is the current number of queued or running jobs (gauge).
	jobsActive atomic.Int64

	// runsExecuted counts schedules actually executed on a machine.
	runsExecuted atomic.Int64
	// schedulesAccounted counts schedules accounted for, including those
	// credited from the memo table without execution.
	schedulesAccounted atomic.Int64
	// stepLimited counts schedules that hit the per-run step bound.
	stepLimited atomic.Int64
	// violations counts accounted schedules with violating verdicts.
	violations atomic.Int64
	// choicePoints accumulates TreeStats.ChoicePoints across slices.
	choicePoints atomic.Int64
	// pruneSeen and pruneDeduped accumulate PruneStats hashing and memo
	// hits; their ratio is the exposed hit rate.
	pruneSeen    atomic.Int64
	pruneDeduped atomic.Int64
	// schedulesSaved accumulates PruneStats.SchedulesSaved.
	schedulesSaved atomic.Int64
	// reorderSkips accumulates PruneStats.ReorderSkips — subtrees cut by a
	// job's reorder bound.
	reorderSkips atomic.Int64
	// dporRaces, dporBacktracks, and dporSleepSkips accumulate the
	// dependence layer's PruneStats across DPOR-mode slices: reversible
	// races detected on executed runs, branches added to frame backtrack
	// sets, and branches skipped by dependence-derived sleep sets.
	dporRaces      atomic.Int64
	dporBacktracks atomic.Int64
	dporSleepSkips atomic.Int64

	// memoEntries is the number of entries resident in the memo arena at
	// the end of the most recently folded slice (gauge; each slice runs
	// its own arena, so residency is per-slice, not cumulative).
	memoEntries atomic.Int64
	// memoAdmitted, memoEvicted, and memoContended accumulate MemoStats
	// across slices: entries written, entries displaced by the per-stripe
	// FIFO clock, and stripe-lock acquisitions that had to wait.
	memoAdmitted  atomic.Int64
	memoEvicted   atomic.Int64
	memoContended atomic.Int64

	// slices counts pool tasks executed (plan and explore).
	slices atomic.Int64
	// checkpointWrites counts durable spool writes.
	checkpointWrites atomic.Int64
}

// NewMetrics returns a metrics set anchored at now (for the uptime and
// throughput gauges).
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// WritePrometheus renders every metric in the Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	uptime := time.Since(m.start).Seconds()
	executed := m.runsExecuted.Load()
	var perSec float64
	if uptime > 0 {
		perSec = float64(executed) / uptime
	}
	var hitRate float64
	if seen := m.pruneSeen.Load(); seen > 0 {
		hitRate = float64(m.pruneDeduped.Load()) / float64(seen)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("tsoserve_jobs_submitted_total", "Jobs accepted at intake.", m.jobsSubmitted.Load())
	counter("tsoserve_jobs_rejected_total", "Submissions refused (validation, queue full, draining).", m.jobsRejected.Load())
	counter("tsoserve_jobs_completed_total", "Jobs finished with a result.", m.jobsCompleted.Load())
	counter("tsoserve_jobs_failed_total", "Jobs that errored.", m.jobsFailed.Load())
	counter("tsoserve_jobs_resumed_total", "Jobs recovered from the spool at startup.", m.jobsResumed.Load())
	gauge("tsoserve_jobs_active", "Queued or running jobs right now.", float64(m.jobsActive.Load()))
	counter("tsoserve_runs_executed_total", "Schedules executed on a machine.", executed)
	counter("tsoserve_schedules_accounted_total", "Schedules accounted for, including memoized credits.", m.schedulesAccounted.Load())
	counter("tsoserve_step_limited_total", "Schedules that hit the per-run step bound.", m.stepLimited.Load())
	counter("tsoserve_violations_total", "Accounted schedules with violating verdicts.", m.violations.Load())
	counter("tsoserve_tree_choice_points_total", "Decision-tree nodes with fanout >= 2 explored.", m.choicePoints.Load())
	counter("tsoserve_prune_states_seen_total", "Canonical states hashed by the memoizer.", m.pruneSeen.Load())
	counter("tsoserve_prune_states_deduped_total", "Canonical states found already memoized.", m.pruneDeduped.Load())
	counter("tsoserve_prune_schedules_saved_total", "Schedules credited from the memo table without execution.", m.schedulesSaved.Load())
	gauge("tsoserve_prune_hit_rate", "StatesDeduped / StatesSeen over the process lifetime.", hitRate)
	counter("tsoserve_reorder_skips_total", "Subtrees cut by jobs' reorder bounds.", m.reorderSkips.Load())
	counter("tsoserve_dpor_races_detected_total", "Reversible races DPOR detected on executed runs.", m.dporRaces.Load())
	counter("tsoserve_dpor_backtracks_total", "Branches DPOR race handling added to backtrack sets.", m.dporBacktracks.Load())
	counter("tsoserve_dpor_sleep_skips_total", "Branches skipped by DPOR dependence-derived sleep sets.", m.dporSleepSkips.Load())
	gauge("tsoserve_memo_entries", "Memo-arena entries resident at the end of the most recent slice.", float64(m.memoEntries.Load()))
	counter("tsoserve_memo_admitted_total", "Memo-arena entries admitted across all slices.", m.memoAdmitted.Load())
	counter("tsoserve_memo_evicted_total", "Memo-arena entries evicted by the per-stripe FIFO clock.", m.memoEvicted.Load())
	counter("tsoserve_memo_stripe_contention_total", "Memo stripe-lock acquisitions that found the lock held.", m.memoContended.Load())
	counter("tsoserve_slices_total", "Pool tasks executed (plan + explore slices).", m.slices.Load())
	counter("tsoserve_checkpoint_writes_total", "Durable spool writes.", m.checkpointWrites.Load())
	gauge("tsoserve_runs_per_second", "Executed schedules per second of uptime.", perSec)
	gauge("tsoserve_uptime_seconds", "Seconds since the server started.", uptime)
}
