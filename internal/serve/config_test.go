package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestConfigDefaults: the zero config is valid and every default is
// filled.
func TestConfigDefaults(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	c := DefaultConfig()
	if c.ListenAddr == "" || c.SpoolDir == "" || c.Workers < 1 || c.QueueDepth < 1 ||
		c.ShardUnits < 1 || c.SliceRuns < 1 || c.MaxJobRuns < 1 || c.MaxStepsPerRun < 1 ||
		c.CheckpointInterval <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

// TestConfigValidateRejects drives each field through its sentinel.
func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(c *Config)
		want error
	}{
		{"workers", func(c *Config) { c.Workers = -1 }, ErrBadWorkers},
		{"queue-depth", func(c *Config) { c.QueueDepth = -4 }, ErrBadQueueDepth},
		{"shard-units", func(c *Config) { c.ShardUnits = -1 }, ErrBadShardUnits},
		{"slice-runs", func(c *Config) { c.SliceRuns = -2 }, ErrBadSliceRuns},
		{"job-runs", func(c *Config) { c.MaxJobRuns = -1 }, ErrBadJobRuns},
		{"step-limit", func(c *Config) { c.MaxStepsPerRun = -1 }, ErrBadStepLimit},
		{"interval", func(c *Config) { c.CheckpointInterval = Duration(-time.Second) }, ErrBadInterval},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c Config
			tc.mut(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("mutation %q accepted", tc.name)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("mutation %q: error %q is not %q", tc.name, err, tc.want)
			}
		})
	}

	// A spool path that is a file, not a directory.
	f := filepath.Join(t.TempDir(), "spool")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := (Config{SpoolDir: f}).Validate(); !errors.Is(err, ErrBadSpoolDir) {
		t.Fatalf("file spool path: %v", err)
	}
}

// TestLoadConfig: strict decoding — durations as strings, unknown
// fields rejected, invalid values rejected.
func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.json", `{
		"listen_addr": "127.0.0.1:0",
		"workers": 2,
		"slice_runs": 128,
		"checkpoint_interval": "250ms"
	}`)
	c, err := LoadConfig(good)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers != 2 || c.SliceRuns != 128 || time.Duration(c.CheckpointInterval) != 250*time.Millisecond {
		t.Fatalf("loaded config %+v", c)
	}

	if _, err := LoadConfig(write("unknown.json", `{"worker_count": 2}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := LoadConfig(write("dur.json", `{"checkpoint_interval": "fast"}`)); err == nil {
		t.Fatal("bad duration accepted")
	}
	if _, err := LoadConfig(write("neg.json", `{"workers": -3}`)); !errors.Is(err, ErrBadWorkers) {
		t.Fatalf("negative workers: %v", err)
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestJobSpecCompile covers the envelope taxonomy and δ defaulting.
func TestJobSpecCompile(t *testing.T) {
	spec := JobSpec{Algorithm: "ff-cl", S: 2, Prefill: 1, WorkerOps: "PT", Thieves: []int{2}}
	p, check, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Config().ObservableBound(); p.Delta != want {
		t.Fatalf("delta not defaulted to the observable bound: %d, want %d", p.Delta, want)
	}
	if check == nil {
		t.Fatal("no spec resolved")
	}

	bad := spec
	bad.Algorithm = "ABP"
	if _, _, err := bad.Compile(); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	bad = spec
	bad.Model = "PSO"
	if _, _, err := bad.Compile(); !errors.Is(err, ErrBadModel) {
		t.Fatalf("PSO model: %v", err)
	}
	bad = spec
	bad.Spec = "linearizable"
	if _, _, err := bad.Compile(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown spec: %v", err)
	}
	bad = spec
	bad.MaxSchedules = -1
	if _, _, err := bad.Compile(); !errors.Is(err, ErrBadBudget) {
		t.Fatalf("negative budget: %v", err)
	}
	bad = spec
	bad.WorkerOps = "PXT"
	if _, _, err := bad.Compile(); err == nil {
		t.Fatal("bad worker ops accepted")
	}
}
