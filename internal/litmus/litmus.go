// Package litmus implements §7.3's TSO[S] litmus test (Figure 9) and the
// grid analysis of Figure 8: run a worker and a thief concurrently
// emptying an FF-THE queue of N tasks, with the worker performing L
// scratch stores per take and the thief using a candidate δ, and check
// that exactly N removals happen. A total other than N proves the machine
// does not implement TSO with the bound implied by (L, δ).
//
// Where the paper needs 10^7 hardware runs per point to win the reordering
// lottery, the chaos engine forces deep store-buffer occupancy directly,
// so a few hundred seeds per point (across drain biases) suffice.
package litmus

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/tso"
)

// Options parameterizes one litmus point.
type Options struct {
	Tasks       int       // queue prefill (paper: 512)
	Seeds       int       // chaos seeds per (bias) configuration
	DrainBiases []float64 // drain starvation levels to sweep
	// Algo selects the fence-free queue under test; the zero value is
	// AlgoFFTHE, the paper's Figure 9 choice. AlgoFFCL is the other
	// δ-parameterized queue and obeys the same bound.
	Algo core.Algo
	// Runner, when non-nil, executes the seed × bias × (L, δ) sweep on
	// its worker pool; nil runs serially. Each run owns its machine and
	// seed, so the results are identical either way.
	Runner *runner.Runner
}

func (o Options) withDefaults() Options {
	if o.Tasks == 0 {
		o.Tasks = 512
	}
	if o.Seeds == 0 {
		o.Seeds = 60
	}
	if len(o.DrainBiases) == 0 {
		o.DrainBiases = []float64{0.02, 0.15}
	}
	if !o.Algo.UsesDelta() {
		o.Algo = core.AlgoFFTHE
	}
	return o
}

// Result summarizes the runs of one (L, δ) point.
type Result struct {
	L, Delta  int
	Runs      int
	Incorrect int // runs where taken+stolen != Tasks
}

// Correct reports whether every run removed exactly Tasks tasks.
func (r Result) Correct() bool { return r.Incorrect == 0 }

// runSpec is one scheduled execution of the Figure 9 program: a fully
// independent job (its machine is created inside the run), which is what
// makes the sweep safe to hand to a runner pool.
type runSpec struct {
	l, delta int
	bias     float64
	seed     int
}

// pointSpecs enumerates one (L, δ) point's runs in the canonical order:
// biases outer, seeds inner.
func pointSpecs(l, delta int, opts Options) []runSpec {
	specs := make([]runSpec, 0, len(opts.DrainBiases)*opts.Seeds)
	for _, bias := range opts.DrainBiases {
		for seed := 0; seed < opts.Seeds; seed++ {
			specs = append(specs, runSpec{l: l, delta: delta, bias: bias, seed: seed})
		}
	}
	return specs
}

// runSpecs executes the flattened runs on opts.Runner (nil: serially) and
// reports, per spec in order, whether the run removed the wrong number of
// tasks. Counting incorrect runs is order-independent, so the fold below
// is deterministic under any completion order.
func runSpecs(ctx context.Context, cfg tso.Config, opts Options, specs []runSpec) ([]bool, error) {
	name := func(_ int, s runSpec) string {
		return fmt.Sprintf("litmus L=%d d=%d bias=%g seed=%d", s.l, s.delta, s.bias, s.seed)
	}
	return runner.Map(ctx, opts.Runner, specs, name, func(_ context.Context, s runSpec) (bool, error) {
		c := cfg
		c.Threads = 2
		c.Seed = int64(s.seed)*1009 + int64(s.bias*1e4)
		c.DrainBias = s.bias
		total, err := runOnce(c, opts.Algo, s.l, s.delta, opts.Tasks)
		if err != nil {
			return false, err
		}
		return total != opts.Tasks, nil
	})
}

// foldPoint aggregates one point's incorrect-run flags into a Result.
func foldPoint(l, delta int, incorrect []bool) Result {
	res := Result{L: l, Delta: delta, Runs: len(incorrect)}
	for _, bad := range incorrect {
		if bad {
			res.Incorrect++
		}
	}
	return res
}

// RunPoint executes the Figure 9 program for one (L, δ) pair on machines
// configured by cfg (Threads forced to 2; Seed/DrainBias swept). It
// panics on a machine error, which can only be an implementation bug.
func RunPoint(cfg tso.Config, l, delta int, opts Options) Result {
	res, err := RunPointCtx(context.Background(), cfg, l, delta, opts)
	if err != nil {
		panic(fmt.Sprintf("litmus: %v", err))
	}
	return res
}

// RunPointCtx is RunPoint with cancellation: the context aborts the seed
// sweep between runs, returning the context's error.
func RunPointCtx(ctx context.Context, cfg tso.Config, l, delta int, opts Options) (Result, error) {
	opts = opts.withDefaults()
	incorrect, err := runSpecs(ctx, cfg, opts, pointSpecs(l, delta, opts))
	if err != nil {
		return Result{}, err
	}
	return foldPoint(l, delta, incorrect), nil
}

// runOnce is one execution of Figure 9: returns taken+stolen.
func runOnce(cfg tso.Config, algo core.Algo, l, delta, tasks int) (int, error) {
	m := tso.NewMachine(cfg)
	defer m.Close()
	q := core.New(algo, m, tasks+1, delta)
	vals := make([]uint64, tasks)
	for i := range vals {
		vals[i] = uint64(i) + 1
	}
	q.(core.Prefiller).Prefill(m, vals)
	scratch := m.Alloc(l + 1)

	taken, stolen := 0, 0
	err := m.Run(
		func(c tso.Context) { // worker
			for {
				if _, st := q.Take(c); st == core.Empty {
					return
				}
				taken++
				for s := 0; s < l; s++ {
					c.Store(scratch+tso.Addr(s), uint64(taken))
				}
			}
		},
		func(c tso.Context) { // thief
			for {
				_, st := q.Steal(c)
				if st == core.Abort || st == core.Empty {
					// Figure 9 stops at ABORT; FF-CL can also answer
					// EMPTY (its abort condition does not subsume it),
					// which equally ends the thief's run.
					return
				}
				stolen++
			}
		},
	)
	return taken + stolen, err
}

// GridPoint is one interpreted cell of Figure 8: the point (α, δ) where
// α = ⌈S/(L+1)⌉ under an assumed bound S.
type GridPoint struct {
	Alpha   int // assumed max take() stores in the buffer
	Delta   int
	Correct bool
	// Ls records which L values mapped to this α.
	Ls []int
}

// Figure8Ls returns the L values whose α = ⌈32/(L+1)⌉ hits the x-axis
// ticks of Figure 8a: 1,2,3,4,5,6,7,8,11,16,32.
func Figure8Ls() []int { return []int{31, 15, 10, 7, 6, 5, 4, 3, 2, 1, 0} }

// RunPoints evaluates the litmus test for every (L, δ) pair produced by
// deltasFor over ls. The raw results can then be folded under different
// assumed bounds with Interpret — exactly how the paper reuses one data
// set for Figures 8a (S=32) and 8b (S=33). With opts.Runner set, the
// entire grid is flattened to independent (L, δ, bias, seed) runs and
// executed on the pool; it panics on a machine error like RunPoint.
func RunPoints(cfg tso.Config, ls []int, deltasFor func(l int) []int, opts Options) []Result {
	out, err := RunPointsCtx(context.Background(), cfg, ls, deltasFor, opts)
	if err != nil {
		panic(fmt.Sprintf("litmus: %v", err))
	}
	return out
}

// RunPointsCtx is RunPoints with cancellation: a cancelled context stops
// dispatching runs and returns the context's error.
func RunPointsCtx(ctx context.Context, cfg tso.Config, ls []int, deltasFor func(l int) []int, opts Options) ([]Result, error) {
	opts = opts.withDefaults()
	type point struct{ l, delta int }
	var points []point
	var specs []runSpec
	for _, l := range ls {
		for _, d := range deltasFor(l) {
			points = append(points, point{l, d})
			specs = append(specs, pointSpecs(l, d, opts)...)
		}
	}
	incorrect, err := runSpecs(ctx, cfg, opts, specs)
	if err != nil {
		return nil, err
	}
	perPoint := len(opts.DrainBiases) * opts.Seeds
	out := make([]Result, 0, len(points))
	for i, p := range points {
		out = append(out, foldPoint(p.l, p.delta, incorrect[i*perPoint:(i+1)*perPoint]))
	}
	return out, nil
}

// Interpret folds raw litmus results by α = ⌈assumedS/(L+1)⌉, marking a
// grid point incorrect if any contributing run was incorrect (the paper's
// Figure 8 classification rule).
func Interpret(results []Result, assumedS int) []GridPoint {
	type key struct{ alpha, delta int }
	agg := map[key]*GridPoint{}
	for _, r := range results {
		alpha := core.Delta(assumedS, r.L)
		k := key{alpha, r.Delta}
		gp, ok := agg[k]
		if !ok {
			gp = &GridPoint{Alpha: alpha, Delta: r.Delta, Correct: true}
			agg[k] = gp
		}
		gp.Ls = append(gp.Ls, r.L)
		if !r.Correct() {
			gp.Correct = false
		}
	}
	out := make([]GridPoint, 0, len(agg))
	for _, gp := range agg {
		out = append(out, *gp)
	}
	sortGrid(out)
	return out
}

// RunGrid evaluates the litmus test across Ls and deltas and folds the
// results by α under assumedS, reproducing one panel of Figure 8.
func RunGrid(cfg tso.Config, assumedS int, ls []int, deltasFor func(l int) []int, opts Options) []GridPoint {
	return Interpret(RunPoints(cfg, ls, deltasFor, opts), assumedS)
}

func sortGrid(g []GridPoint) {
	for i := 1; i < len(g); i++ {
		for j := i; j > 0 && less(g[j], g[j-1]); j-- {
			g[j], g[j-1] = g[j-1], g[j]
		}
	}
}

func less(a, b GridPoint) bool {
	if a.Alpha != b.Alpha {
		return a.Alpha < b.Alpha
	}
	return a.Delta < b.Delta
}
