// Package litmus implements §7.3's TSO[S] litmus test (Figure 9) and the
// grid analysis of Figure 8: run a worker and a thief concurrently
// emptying an FF-THE queue of N tasks, with the worker performing L
// scratch stores per take and the thief using a candidate δ, and check
// that exactly N removals happen. A total other than N proves the machine
// does not implement TSO with the bound implied by (L, δ).
//
// Where the paper needs 10^7 hardware runs per point to win the reordering
// lottery, the chaos engine forces deep store-buffer occupancy directly,
// so a few hundred seeds per point (across drain biases) suffice.
package litmus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tso"
)

// Options parameterizes one litmus point.
type Options struct {
	Tasks       int       // queue prefill (paper: 512)
	Seeds       int       // chaos seeds per (bias) configuration
	DrainBiases []float64 // drain starvation levels to sweep
	// Algo selects the fence-free queue under test; the zero value is
	// AlgoFFTHE, the paper's Figure 9 choice. AlgoFFCL is the other
	// δ-parameterized queue and obeys the same bound.
	Algo core.Algo
}

func (o Options) withDefaults() Options {
	if o.Tasks == 0 {
		o.Tasks = 512
	}
	if o.Seeds == 0 {
		o.Seeds = 60
	}
	if len(o.DrainBiases) == 0 {
		o.DrainBiases = []float64{0.02, 0.15}
	}
	if !o.Algo.UsesDelta() {
		o.Algo = core.AlgoFFTHE
	}
	return o
}

// Result summarizes the runs of one (L, δ) point.
type Result struct {
	L, Delta  int
	Runs      int
	Incorrect int // runs where taken+stolen != Tasks
}

// Correct reports whether every run removed exactly Tasks tasks.
func (r Result) Correct() bool { return r.Incorrect == 0 }

// RunPoint executes the Figure 9 program for one (L, δ) pair on machines
// configured by cfg (Threads forced to 2; Seed/DrainBias swept).
func RunPoint(cfg tso.Config, l, delta int, opts Options) Result {
	opts = opts.withDefaults()
	res := Result{L: l, Delta: delta}
	for _, bias := range opts.DrainBiases {
		for seed := 0; seed < opts.Seeds; seed++ {
			c := cfg
			c.Threads = 2
			c.Seed = int64(seed)*1009 + int64(bias*1e4)
			c.DrainBias = bias
			total, err := runOnce(c, opts.Algo, l, delta, opts.Tasks)
			if err != nil {
				panic(fmt.Sprintf("litmus: %v", err))
			}
			res.Runs++
			if total != opts.Tasks {
				res.Incorrect++
			}
		}
	}
	return res
}

// runOnce is one execution of Figure 9: returns taken+stolen.
func runOnce(cfg tso.Config, algo core.Algo, l, delta, tasks int) (int, error) {
	m := tso.NewMachine(cfg)
	q := core.New(algo, m, tasks+1, delta)
	vals := make([]uint64, tasks)
	for i := range vals {
		vals[i] = uint64(i) + 1
	}
	q.(core.Prefiller).Prefill(m, vals)
	scratch := m.Alloc(l + 1)

	taken, stolen := 0, 0
	err := m.Run(
		func(c tso.Context) { // worker
			for {
				if _, st := q.Take(c); st == core.Empty {
					return
				}
				taken++
				for s := 0; s < l; s++ {
					c.Store(scratch+tso.Addr(s), uint64(taken))
				}
			}
		},
		func(c tso.Context) { // thief
			for {
				_, st := q.Steal(c)
				if st == core.Abort || st == core.Empty {
					// Figure 9 stops at ABORT; FF-CL can also answer
					// EMPTY (its abort condition does not subsume it),
					// which equally ends the thief's run.
					return
				}
				stolen++
			}
		},
	)
	return taken + stolen, err
}

// GridPoint is one interpreted cell of Figure 8: the point (α, δ) where
// α = ⌈S/(L+1)⌉ under an assumed bound S.
type GridPoint struct {
	Alpha   int // assumed max take() stores in the buffer
	Delta   int
	Correct bool
	// Ls records which L values mapped to this α.
	Ls []int
}

// Figure8Ls returns the L values whose α = ⌈32/(L+1)⌉ hits the x-axis
// ticks of Figure 8a: 1,2,3,4,5,6,7,8,11,16,32.
func Figure8Ls() []int { return []int{31, 15, 10, 7, 6, 5, 4, 3, 2, 1, 0} }

// RunPoints evaluates the litmus test for every (L, δ) pair produced by
// deltasFor over ls. The raw results can then be folded under different
// assumed bounds with Interpret — exactly how the paper reuses one data
// set for Figures 8a (S=32) and 8b (S=33).
func RunPoints(cfg tso.Config, ls []int, deltasFor func(l int) []int, opts Options) []Result {
	var out []Result
	for _, l := range ls {
		for _, d := range deltasFor(l) {
			out = append(out, RunPoint(cfg, l, d, opts))
		}
	}
	return out
}

// Interpret folds raw litmus results by α = ⌈assumedS/(L+1)⌉, marking a
// grid point incorrect if any contributing run was incorrect (the paper's
// Figure 8 classification rule).
func Interpret(results []Result, assumedS int) []GridPoint {
	type key struct{ alpha, delta int }
	agg := map[key]*GridPoint{}
	for _, r := range results {
		alpha := core.Delta(assumedS, r.L)
		k := key{alpha, r.Delta}
		gp, ok := agg[k]
		if !ok {
			gp = &GridPoint{Alpha: alpha, Delta: r.Delta, Correct: true}
			agg[k] = gp
		}
		gp.Ls = append(gp.Ls, r.L)
		if !r.Correct() {
			gp.Correct = false
		}
	}
	out := make([]GridPoint, 0, len(agg))
	for _, gp := range agg {
		out = append(out, *gp)
	}
	sortGrid(out)
	return out
}

// RunGrid evaluates the litmus test across Ls and deltas and folds the
// results by α under assumedS, reproducing one panel of Figure 8.
func RunGrid(cfg tso.Config, assumedS int, ls []int, deltasFor func(l int) []int, opts Options) []GridPoint {
	return Interpret(RunPoints(cfg, ls, deltasFor, opts), assumedS)
}

func sortGrid(g []GridPoint) {
	for i := 1; i < len(g); i++ {
		for j := i; j > 0 && less(g[j], g[j-1]); j-- {
			g[j], g[j-1] = g[j-1], g[j]
		}
	}
}

func less(a, b GridPoint) bool {
	if a.Alpha != b.Alpha {
		return a.Alpha < b.Alpha
	}
	return a.Delta < b.Delta
}
