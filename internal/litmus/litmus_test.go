package litmus

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tso"
)

// Small machine for fast tests: S=3 with the drain stage, so the true
// observable bound is 4.
var testCfg = tso.Config{BufferSize: 3, DrainBuffer: true}

var testOpts = Options{Tasks: 64, Seeds: 40, DrainBiases: []float64{0.03, 0.2}}

func TestSoundDeltaCorrect(t *testing.T) {
	bound := testCfg.ObservableBound() // 4
	for _, l := range []int{1, 2, 3} {
		delta := core.Delta(bound, l)
		r := RunPoint(testCfg, l, delta, testOpts)
		if !r.Correct() {
			t.Fatalf("L=%d δ=%d (sound for bound %d): %d/%d incorrect", l, delta, bound, r.Incorrect, r.Runs)
		}
	}
}

func TestUnsoundDeltaIncorrect(t *testing.T) {
	// δ computed from the *raw* capacity S=3 instead of the observable
	// bound 4, at an L where they differ: ⌈3/(L+1)⌉ < ⌈4/(L+1)⌉ requires
	// (L+1) | 3 ... choose L=0: α(3)=3 < α(4)=4.
	r := RunPoint(testCfg, 0, 3, Options{Tasks: 64, Seeds: 120, DrainBiases: []float64{0.02, 0.1, 0.3}})
	if r.Correct() {
		t.Fatalf("L=0 δ=3 on an observable-bound-4 machine never failed (%d runs); reordering not exercised", r.Runs)
	}
}

func TestCoalescingBreaksL0EvenAtBound(t *testing.T) {
	// Figure 8b's outlier: with L=0 the only worker stores are to T, the
	// drain stage coalesces them, and even δ = S+1 fails.
	r := RunPoint(testCfg, 0, testCfg.ObservableBound(), Options{Tasks: 64, Seeds: 200, DrainBiases: []float64{0.02, 0.1, 0.3}})
	if r.Correct() {
		t.Fatalf("L=0 δ=%d with coalescing never failed (%d runs)", testCfg.ObservableBound(), r.Runs)
	}
}

func TestL1RestoresSoundnessUnderCoalescing(t *testing.T) {
	// One scratch store between takes separates the stores to T: no
	// chained coalescing, so δ=⌈4/2⌉=2 is sound again.
	r := RunPoint(testCfg, 1, 2, testOpts)
	if !r.Correct() {
		t.Fatalf("L=1 δ=2: %d/%d incorrect", r.Incorrect, r.Runs)
	}
}

func TestWithoutStageRawBoundIsSound(t *testing.T) {
	cfg := tso.Config{BufferSize: 3}
	r := RunPoint(cfg, 0, 3, testOpts)
	if !r.Correct() {
		t.Fatalf("no drain stage, δ=S: %d/%d incorrect", r.Incorrect, r.Runs)
	}
}

func TestFigure8Ls(t *testing.T) {
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 11, 16, 32}
	ls := Figure8Ls()
	if len(ls) != len(want) {
		t.Fatalf("got %d Ls want %d", len(ls), len(want))
	}
	for i, l := range ls {
		if got := core.Delta(32, l); got != want[i] {
			t.Fatalf("L=%d gives α=%d want %d", l, got, want[i])
		}
	}
}

func TestRunGridSmall(t *testing.T) {
	// A miniature Figure 8: assumed S equals the raw capacity (3), true
	// bound 4. Points with δ = α(3) where α(3) < α(4) must come out
	// incorrect; δ = α(4) points correct except the L=0 coalescing case.
	ls := []int{2, 1, 0}
	grid := RunGrid(testCfg, 3, ls, func(l int) []int {
		a3 := core.Delta(3, l)
		a4 := core.Delta(4, l)
		if a3 == a4 {
			return []int{a3}
		}
		return []int{a3, a4}
	}, Options{Tasks: 48, Seeds: 60, DrainBiases: []float64{0.02, 0.2}})

	if len(grid) == 0 {
		t.Fatal("empty grid")
	}
	for _, gp := range grid {
		trueNeeded := 0
		for _, l := range gp.Ls {
			if n := core.Delta(4, l); n > trueNeeded {
				trueNeeded = n
			}
		}
		hasL0 := false
		for _, l := range gp.Ls {
			if l == 0 {
				hasL0 = true
			}
		}
		switch {
		case hasL0:
			// Coalescing: incorrect regardless of δ.
			if gp.Correct {
				t.Errorf("grid point α=%d δ=%d (L=0) unexpectedly correct", gp.Alpha, gp.Delta)
			}
		case gp.Delta >= trueNeeded:
			if !gp.Correct {
				t.Errorf("grid point α=%d δ=%d should be correct (true need %d)", gp.Alpha, gp.Delta, trueNeeded)
			}
		default:
			if gp.Correct {
				t.Errorf("grid point α=%d δ=%d should be incorrect (true need %d)", gp.Alpha, gp.Delta, trueNeeded)
			}
		}
	}
}

func TestResultAccounting(t *testing.T) {
	r := RunPoint(tso.Config{BufferSize: 4}, 1, 2, Options{Tasks: 32, Seeds: 5, DrainBiases: []float64{0.3}})
	if r.Runs != 5 {
		t.Fatalf("runs = %d want 5", r.Runs)
	}
	if r.L != 1 || r.Delta != 2 {
		t.Fatalf("point identity wrong: %+v", r)
	}
}

// TestFFCLObeysTheSameBound runs the litmus program over FF-CL instead of
// FF-THE: the bound argument is algorithm-independent, so a sound δ must
// be correct and the L=0 coalescing case must still fail.
func TestFFCLObeysTheSameBound(t *testing.T) {
	ffcl := Options{Tasks: 64, Seeds: 40, DrainBiases: []float64{0.03, 0.2}, Algo: core.AlgoFFCL}
	bound := testCfg.ObservableBound()
	r := RunPoint(testCfg, 1, core.Delta(bound, 1), ffcl)
	if !r.Correct() {
		t.Fatalf("FF-CL sound δ: %d/%d incorrect", r.Incorrect, r.Runs)
	}
	hunting := Options{Tasks: 64, Seeds: 300, DrainBiases: []float64{0.02, 0.1, 0.3}, Algo: core.AlgoFFCL}
	r = RunPoint(testCfg, 0, bound, hunting)
	if r.Correct() {
		t.Fatalf("FF-CL with L=0 coalescing never failed (%d runs)", r.Runs)
	}
}

func TestOptionsAlgoDefaultsToFFTHE(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Algo != core.AlgoFFTHE {
		t.Fatalf("default algo = %v", o.Algo)
	}
	o = Options{Algo: core.AlgoTHE}.withDefaults() // not δ-parameterized
	if o.Algo != core.AlgoFFTHE {
		t.Fatalf("non-δ algo not replaced: %v", o.Algo)
	}
}
