package repro

// Figure-level benchmark harness: one benchmark per table/figure in the
// paper's evaluation, plus queue-operation microbenchmarks. Each iteration
// regenerates (a reduced version of) the experiment and reports the
// headline quantity as a custom metric, so `go test -bench=.` doubles as a
// regression check on the reproduction's shape. The cmd/ tools run the
// full-scale versions.

import (
	"context"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/litmus"
	"repro/internal/litmusdsl"
	"repro/internal/measure"
	"repro/internal/native"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/tso"
)

// BenchmarkFig1_FenceOverhead regenerates Figure 1 (single-threaded fence
// overhead) and reports the normalized fence-free time of the most and
// least fence-sensitive programs.
func BenchmarkFig1_FenceOverhead(b *testing.B) {
	var fib, chol float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.Figure1(apps.SizeBench)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.App {
			case "Fib":
				fib = r.NormalizedPct
			case "cholesky":
				chol = r.NormalizedPct
			}
		}
	}
	b.ReportMetric(fib, "fib-normalized-%")
	b.ReportMetric(chol, "cholesky-normalized-%")
}

// BenchmarkFig7_CapacityWestmere regenerates the Figure 7 measurement on
// the Westmere model; the reported metric must stay 33.
func BenchmarkFig7_CapacityWestmere(b *testing.B) {
	benchCapacity(b, expt.Westmere())
}

// BenchmarkFig7_CapacityHaswell is the Haswell variant (metric 43).
func BenchmarkFig7_CapacityHaswell(b *testing.B) {
	benchCapacity(b, expt.HaswellP())
}

func benchCapacity(b *testing.B, p expt.Platform) {
	capacity := 0
	for i := 0; i < b.N; i++ {
		pts := measure.StoreBufferCapacity(p.Cfg, measure.CapacityOptions{
			MaxSeq: p.Cfg.ObservableBound() + 8, Iters: 16,
		})
		c, err := measure.DetectCapacity(pts, tso.DefaultCost)
		if err != nil {
			b.Fatal(err)
		}
		capacity = c
	}
	b.ReportMetric(float64(capacity), "measured-capacity")
}

// BenchmarkFig8_LitmusGrid runs a reduced Figure 8 grid per iteration and
// reports how many grid points each panel classifies as incorrect (panel
// a must find some; panel b only the L=0 coalescing point).
func BenchmarkFig8_LitmusGrid(b *testing.B) {
	var badA, badB float64
	for i := 0; i < b.N; i++ {
		res := expt.Figure8(litmus.Options{Tasks: 64, Seeds: 12, DrainBiases: []float64{0.02, 0.2}})
		badA, badB = 0, 0
		for _, gp := range res.PanelA {
			if !gp.Correct && gp.Delta >= gp.Alpha {
				badA++
			}
		}
		for _, gp := range res.PanelB {
			if !gp.Correct && gp.Delta >= gp.Alpha {
				badB++
			}
		}
	}
	b.ReportMetric(badA, "panelA-incorrect-on-line")
	b.ReportMetric(badB, "panelB-incorrect-on-line")
}

// BenchmarkRunner_Figure8Grid runs the same reduced Figure 8 grid through
// the experiment engine serially and on a GOMAXPROCS-wide pool. On a
// multi-core host the parallel sub-benchmark's ns/op shows the engine's
// speedup; the grid itself is identical either way (the determinism tests
// in internal/expt assert byte-equal renders).
func BenchmarkRunner_Figure8Grid(b *testing.B) {
	grid := func(b *testing.B, r *runner.Runner) {
		opts := litmus.Options{Tasks: 64, Seeds: 12, DrainBiases: []float64{0.02, 0.2}, Runner: r}
		for i := 0; i < b.N; i++ {
			if _, err := expt.Figure8Ctx(context.Background(), opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { grid(b, nil) })
	b.Run("parallel", func(b *testing.B) { grid(b, runner.New(0)) })
}

// BenchmarkFig10_Westmere and BenchmarkFig10_Haswell regenerate reduced
// Figure 10 panels (test-size inputs, one scheduler seed) and report the
// geometric-mean normalized run time of THEP — the paper's headline.
func BenchmarkFig10_Westmere(b *testing.B) {
	benchFig10(b, expt.ScaledWestmere())
}

func BenchmarkFig10_Haswell(b *testing.B) {
	benchFig10(b, expt.ScaledHaswell())
}

func benchFig10(b *testing.B, p expt.Platform) {
	var thep, ffthe float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure10(p, apps.SizeTest, 1)
		if err != nil {
			b.Fatal(err)
		}
		thep = res.GeoMean["THEP"]
		ffthe = res.GeoMean["FF-THE d=4"]
	}
	b.ReportMetric(thep, "THEP-geomean-%")
	b.ReportMetric(ffthe, "FFTHE-d4-geomean-%")
}

// BenchmarkFig11_TransitiveClosure regenerates a reduced Figure 11 and
// reports FF-CL's normalized run time on the torus, the paper's
// biggest-gain input.
func BenchmarkFig11_TransitiveClosure(b *testing.B) {
	var ffcl float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure11(expt.ScaledHaswell(), 400, 1)
		if err != nil {
			b.Fatal(err)
		}
		ffcl = res.Rows[2].Cells["FF-CL"].NormalizedPct
	}
	b.ReportMetric(ffcl, "FFCL-torus-normalized-%")
}

// BenchmarkSimQueueOps measures raw simulated queue-operation throughput
// (put+take pairs per benchmark op) for each algorithm on the timed
// engine — the cost floor under every figure.
func BenchmarkSimQueueOps(b *testing.B) {
	for _, algo := range core.Algos {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			m := tso.NewTimedMachine(tso.Config{Threads: 1, BufferSize: 33})
			q := core.New(algo, m, 1<<12, 2)
			b.ResetTimer()
			err := m.Run(func(c tso.Context) {
				for i := 0; i < b.N; i++ {
					q.Put(c, uint64(i)+1)
					if _, st := q.Take(c); st != core.OK {
						b.Fail()
						return
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSimSchedulerFib measures end-to-end simulated scheduling cost:
// one fib run per iteration, reporting virtual cycles.
func BenchmarkSimSchedulerFib(b *testing.B) {
	for _, algo := range []core.Algo{core.AlgoTHE, core.AlgoTHEP} {
		algo := algo
		b.Run(algo.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				app, _ := apps.ByName("Fib")
				m := tso.NewTimedMachine(tso.Config{Threads: 4, BufferSize: 13, DrainBuffer: true})
				p := sched.NewPool(m, sched.Options{Algo: algo, Delta: 7, Seed: int64(i)})
				root, verify := app.Build(apps.SizeTest)
				if _, err := p.Run(root); err != nil {
					b.Fatal(err)
				}
				if err := verify(); err != nil {
					b.Fatal(err)
				}
				cycles = m.Elapsed()
			}
			b.ReportMetric(float64(cycles), "virtual-cycles")
		})
	}
}

// BenchmarkNativeDeque measures the real library's owner-path throughput.
func BenchmarkNativeDeque(b *testing.B) {
	d := native.NewDeque[int](1 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
		if _, ok := d.PopBottom(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// BenchmarkNativeDequeSteal measures the thief path against a prefilled
// deque.
func BenchmarkNativeDequeSteal(b *testing.B) {
	d := native.NewDeque[int](1 << 20)
	for i := 0; i < b.N; i++ {
		d.PushBottom(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Steal(); !ok {
			b.Fatal("steal failed")
		}
	}
}

// BenchmarkNativePoolSpawn measures pool task overhead with a wide flat
// graph.
func BenchmarkNativePoolSpawn(b *testing.B) {
	p := native.NewPool(native.Options{Workers: 4, Seed: 1})
	defer p.Close()
	b.ResetTimer()
	if err := p.Submit(func(c *native.Context) {
		for i := 0; i < b.N; i++ {
			c.Spawn(func(*native.Context) {})
		}
	}); err != nil {
		b.Fatal(err)
	}
	p.Wait()
}

// BenchmarkLitmusMatrix runs the classic litmus library exhaustively and
// reports the number of verdict mismatches (must stay 0) — the memory
// model's regression gauge.
func BenchmarkLitmusMatrix(b *testing.B) {
	failures := 0
	for i := 0; i < b.N; i++ {
		failures = 0
		for _, src := range litmusdsl.Library {
			t, err := litmusdsl.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			res, err := litmusdsl.Run(t, litmusdsl.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Ok() {
				failures++
			}
		}
	}
	b.ReportMetric(float64(failures), "verdict-mismatches")
}

// BenchmarkFig10_HaswellHT regenerates the hyperthreaded Figure 10 panel
// (reduced) and reports THEP's geomean — §8.1's compression check.
func BenchmarkFig10_HaswellHT(b *testing.B) {
	var thep float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure10(expt.HT(expt.ScaledHaswell()), apps.SizeTest, 1)
		if err != nil {
			b.Fatal(err)
		}
		thep = res.GeoMean["THEP"]
	}
	b.ReportMetric(thep, "THEP-HT-geomean-%")
}
